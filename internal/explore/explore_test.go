package explore

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/kernel"
	"repro/internal/probe"
	"repro/internal/sim"
)

func TestDFSCompletesPingPongCleanly(t *testing.T) {
	s := PingPong(arch.Wallaby, 3)
	res := Explore(s, Config{Policy: DFS, Depth: 4})
	if res.Failure != nil {
		t.Fatalf("oracle violation on schedule %v: %s", res.Failure.Trace, res.Failure.Err)
	}
	if !res.Complete {
		t.Error("bounded DFS did not exhaust the space")
	}
	if res.MaxWidth < 2 {
		t.Errorf("max branching factor %d — the scenario exposes no decision points", res.MaxWidth)
	}
	if res.Runs < 2 {
		t.Errorf("DFS executed %d run(s), expected to branch", res.Runs)
	}
}

func TestRandomWalksBLTMN(t *testing.T) {
	s := BLT(arch.Wallaby, blt.BusyWait, true)
	res := Explore(s, Config{Policy: RandomWalk, Runs: 6, Seed: 0x5eed})
	if res.Failure != nil {
		t.Fatalf("oracle violation (seed %d, run %d): %s\ntrace: %s",
			res.Failure.Seed, res.Failure.Run, res.Failure.Err, TraceString(res.Failure.Trace))
	}
	if res.Decisions == 0 {
		t.Error("no decision points across all walks")
	}
}

func TestRandomWalksBLTNNBlocking(t *testing.T) {
	s := BLT(arch.Wallaby, blt.Blocking, false)
	res := Explore(s, Config{Policy: RandomWalk, Runs: 4, Seed: 0xb10c})
	if res.Failure != nil {
		t.Fatalf("oracle violation (seed %d): %s", res.Failure.Seed, res.Failure.Err)
	}
}

// lostWakeBugScenario deliberately re-introduces a lost-wake bug class:
// a wake-chaining protocol with one exit path that forgets to pass the
// baton on. Two workers are released from a barrier in lockstep and both
// block on word W; the single wake that follows relies on each woken
// worker re-waking the next — but the "sink" worker exits without
// chaining. On schedules where the sink enqueued on W first, it absorbs
// the only wake and the chainer sleeps forever. The enqueue order is a
// pure scheduling decision, so the explorer must find the failing
// schedule, shrink it, and replay it byte-identically.
func lostWakeBugScenario() Scenario {
	return Scenario{
		Name: "lostwake-bug",
		Run: func(ch sim.Chooser) error {
			e := sim.New()
			e.SetChooser(ch)
			e.SetTrapPanics(true)
			defer e.Shutdown()
			k := kernel.New(e, arch.Wallaby())
			root := k.NewTask("root", k.NewAddressSpace(), func(t *kernel.Task) int {
				w, err := t.Mmap(8, true)
				if err != nil {
					return 1
				}
				start, err := t.Mmap(8, true)
				if err != nil {
					return 1
				}
				// Released by one barrier wake, the workers reach the W
				// wait in lockstep: their enqueue order on W is decided
				// only by same-instant tie-breaks.
				chainer := t.Clone("chainer", kernel.PThreadFlags, func(t *kernel.Task) int {
					t.FutexWait(start, 0)
					t.FutexWait(w, 0)
					t.FutexWake(w, 1) // pass the baton on
					return 0
				})
				sink := t.Clone("sink", kernel.PThreadFlags, func(t *kernel.Task) int {
					t.FutexWait(start, 0)
					t.FutexWait(w, 0)
					// BUG: exits without chaining the wake.
					return 0
				})
				chainer.SetAffinity(1)
				sink.SetAffinity(2)
				t.Nanosleep(10 * sim.Microsecond) // both parked on the barrier
				t.FutexWake(start, 2)
				t.Nanosleep(10 * sim.Microsecond) // both parked on W
				t.FutexWake(w, 1)                 // the protocol chains the rest
				t.Join(chainer)
				t.Join(sink)
				return 0
			})
			k.Start(root, 0)
			return e.Run() // a lost wake surfaces as the engine's deadlock error
		},
	}
}

func TestExplorerFindsShrinksAndReplaysLostWakeBug(t *testing.T) {
	s := lostWakeBugScenario()
	res := Explore(s, Config{Policy: DFS, Depth: 8, Runs: 4096})
	if res.Failure == nil {
		t.Fatalf("explorer missed the deliberate lost-wake bug (%d runs, max width %d)", res.Runs, res.MaxWidth)
	}
	f := res.Failure
	if f.ShrunkErr == "" {
		t.Fatalf("shrunk trace %v does not fail", f.Shrunk)
	}
	if len(f.Shrunk) > len(f.Trace) {
		t.Errorf("shrunk trace longer than original: %d > %d", len(f.Shrunk), len(f.Trace))
	}
	// The shrunk prefix is minimal: dropping its last decision (or any
	// single decrement — checked by Shrink itself) must not fail.
	if n := len(f.Shrunk); n > 0 {
		if _, err := Replay(s, f.Shrunk[:n-1]); err != nil && f.Shrunk[n-1] == 0 {
			t.Errorf("prefix %v already fails; shrink left a redundant trailing decision", f.Shrunk[:n-1])
		}
	}
	// Byte-identical replay: the same prefix must reproduce the same
	// full decision trace and the same failure, twice.
	ds1, err1 := Replay(s, f.Shrunk)
	ds2, err2 := Replay(s, f.Shrunk)
	if err1 == nil || err2 == nil {
		t.Fatalf("replay of shrunk trace did not fail: %v / %v", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Errorf("replay errors differ:\n  %v\n  %v", err1, err2)
	}
	if err1.Error() != f.ShrunkErr {
		t.Errorf("replay error %q != recorded shrunk error %q", err1, f.ShrunkErr)
	}
	if !reflect.DeepEqual(ds1, ds2) {
		t.Errorf("replayed decision traces differ:\n  %v\n  %v", ds1, ds2)
	}
}

func TestRandomWalkAlsoFindsLostWakeBug(t *testing.T) {
	s := lostWakeBugScenario()
	res := Explore(s, Config{Policy: RandomWalk, Runs: 64, Seed: 1})
	if res.Failure == nil {
		t.Skip("no failing schedule in 64 walks (bug reachable only via DFS here)")
	}
	// The failing walk's trace must replay to the same failure.
	if _, err := Replay(s, res.Failure.Trace); err == nil {
		t.Errorf("failing random trace %s replays clean", TraceString(res.Failure.Trace))
	}
}

func TestTraceStringRoundTrip(t *testing.T) {
	for _, trace := range [][]int{nil, {0}, {2, 0, 1, 3}} {
		got, err := ParseTrace(TraceString(trace))
		if err != nil {
			t.Fatalf("ParseTrace(%q): %v", TraceString(trace), err)
		}
		if len(got) != len(trace) {
			t.Errorf("round trip %v -> %v", trace, got)
			continue
		}
		for i := range got {
			if got[i] != trace[i] {
				t.Errorf("round trip %v -> %v", trace, got)
			}
		}
	}
	if _, err := ParseTrace("1,x"); err == nil {
		t.Error("ParseTrace accepted garbage")
	}
}

// TestStockScenarioDigestDeterminism pins schedule-digest determinism
// over every stock scenario: the recorded decision trace — the
// explorer's digest of one execution — must be identical across repeated
// runs of the same schedule, and a same-seed random exploration must
// reproduce the same aggregate result. The engine's timer plumbing
// (heap, deferred slot and timing wheel) sits under every one of these
// schedules, so any tie-order drift there surfaces here as a digest
// mismatch.
func TestStockScenarioDigestDeterminism(t *testing.T) {
	for _, name := range ScenarioNames() {
		s, err := ByName(name, arch.Wallaby, blt.BusyWait)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		ds1, err1 := Replay(s, nil)
		ds2, err2 := Replay(s, nil)
		if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
			t.Errorf("%s: replay errors differ: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(ds1, ds2) {
			t.Errorf("%s: default-schedule decision digests differ:\n  %v\n  %v", name, ds1, ds2)
		}
		if len(ds1) == 0 {
			t.Errorf("%s: no decision points recorded — the scenario pins nothing", name)
		}

		r1 := Explore(s, Config{Policy: RandomWalk, Runs: 4, Seed: 0xd16e57})
		r2 := Explore(s, Config{Policy: RandomWalk, Runs: 4, Seed: 0xd16e57})
		if r1.Runs != r2.Runs || r1.Decisions != r2.Decisions || r1.MaxWidth != r2.MaxWidth {
			t.Errorf("%s: same-seed explorations diverge: %+v vs %+v", name, r1, r2)
		}
		if (r1.Failure == nil) != (r2.Failure == nil) {
			t.Errorf("%s: same-seed explorations disagree on failure", name)
		} else if r1.Failure != nil && !reflect.DeepEqual(r1.Failure.Trace, r2.Failure.Trace) {
			t.Errorf("%s: same-seed failing traces differ: %v vs %v", name, r1.Failure.Trace, r2.Failure.Trace)
		}
	}
}

// TestProbesDoNotPerturbExploration pins the probe plane's determinism
// contract inside the explorer: attaching observe-only stock probes
// (fire counters across the hot attach points plus an SLO aggregator
// with a generous bound) to every scenario kernel must leave the
// decision digest of the default schedule byte-identical to the bare
// run. Any probe that consumed randomness, reordered events or charged
// virtual time would shift a tie-break somewhere in these schedules and
// surface here as a digest mismatch.
func TestProbesDoNotPerturbExploration(t *testing.T) {
	specs, err := probe.ParseSpecs(
		"count:points=syscall:enter+sched:dispatch+futex:wait+futex:wake+task:spawn+task:exit;slo:p99_us=1000000")
	if err != nil {
		t.Fatalf("ParseSpecs: %v", err)
	}
	for _, name := range ScenarioNames() {
		s, err := ByName(name, arch.Wallaby, blt.BusyWait)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		ProbeSpecs = nil
		bare, bareErr := Replay(s, nil)
		ProbeSpecs = specs
		probed, probedErr := Replay(s, nil)
		ProbeSpecs = nil
		if (bareErr == nil) != (probedErr == nil) ||
			(bareErr != nil && bareErr.Error() != probedErr.Error()) {
			t.Errorf("%s: probes changed the verdict: bare %v, probed %v", name, bareErr, probedErr)
		}
		if !reflect.DeepEqual(bare, probed) {
			t.Errorf("%s: observe probes perturbed the decision digest:\n  bare:   %v\n  probed: %v",
				name, bare, probed)
		}
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName("nope", arch.Wallaby, blt.BusyWait); err == nil {
		t.Error("ByName accepted an unknown scenario")
	}
	for _, n := range ScenarioNames() {
		if _, err := ByName(n, arch.Wallaby, blt.BusyWait); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
}
