package explore

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
	usync "repro/internal/sync"
)

// Lock-scenario shape: small enough for DFS to bite, oversubscribed
// enough that the chooser can reorder handoffs.
const (
	lockTasks = 3
	lockOps   = 4
	lockCores = 2
)

// LockScenario is the contention-lab exploration scenario for one lock
// algorithm: lockTasks tasks on lockCores cores hammer a racy counter
// under the lock while the chooser perturbs every scheduling decision.
// Oracles, per explored schedule: the counter is exact (mutual
// exclusion under every interleaving), the fairness discipline holds —
// strict handoff-in-queueing-order for the FIFO algorithms (ticket,
// MCS, CLH), and for the unfair ones no waiter that reached the
// queueing point is ever passed over unboundedly or left unserved —
// and the futex ledger is conserved at quiescence.
func LockScenario(mk func() *arch.Machine, algo string) Scenario {
	return Scenario{
		Name: "lock-" + algo,
		Run: func(ch sim.Chooser) error {
			e := sim.New()
			e.SetChooser(ch)
			e.SetTrapPanics(true)
			defer e.Shutdown()
			k := newKernel(e, mk())
			var fair usync.Fairness
			var counter uint64
			var mkErr error
			root := k.NewTask("lock-root", k.NewAddressSpace(), func(rt *kernel.Task) int {
				l, err := usync.New(rt, algo, usync.Config{})
				if err != nil {
					mkErr = err
					return 1
				}
				l.SetFairness(&fair)
				ctr, err := rt.Mmap(8, true)
				if err != nil {
					mkErr = err
					return 1
				}
				space := rt.Space()
				kids := make([]*kernel.Task, lockTasks)
				for i := range kids {
					kids[i] = rt.ClonePinned(fmt.Sprintf("lk%d", i), kernel.PThreadFlags, i%lockCores,
						func(t *kernel.Task) int {
							for op := 0; op < lockOps; op++ {
								l.Lock(t)
								v, _ := space.ReadU64(ctr, nil)
								t.Compute(300 * sim.Nanosecond)
								space.WriteU64(ctr, v+1, nil)
								l.Unlock(t)
								t.Compute(100 * sim.Nanosecond)
							}
							return 0
						})
				}
				bad := 0
				for _, kid := range kids {
					if rt.Join(kid) != 0 {
						bad++
					}
				}
				counter, _ = space.ReadU64(ctr, nil)
				return bad
			})
			k.Start(root, 0)
			if err := drain(e, "lock-"+algo); err != nil {
				return err
			}
			if mkErr != nil {
				return mkErr
			}
			if !root.Exited() || root.ExitCode() != 0 {
				return fmt.Errorf("lock-%s: root exit %d (exited=%v)", algo, root.ExitCode(), root.Exited())
			}
			if want := uint64(lockTasks * lockOps); counter != want {
				return fmt.Errorf("lock-%s: counter=%d want %d — mutual exclusion violated", algo, counter, want)
			}
			if got, want := fair.Acquisitions(), lockTasks*lockOps; got != want {
				return fmt.Errorf("lock-%s: %d recorded acquisitions, want %d", algo, got, want)
			}
			// Unfair locks get a bound of total acquisitions: with every
			// arrival required to acquire (starvation check) and the drain
			// horizon bounding livelock, the bound only needs to be finite.
			if err := fair.Check(usync.FIFO(algo), lockTasks*lockOps); err != nil {
				return fmt.Errorf("lock-%s: %v", algo, err)
			}
			return CheckFutexConservation(k)
		},
	}
}

// lockScenarioNames lists the per-algorithm lock scenarios.
func lockScenarioNames() []string {
	names := make([]string, 0, len(usync.Names()))
	for _, algo := range usync.Names() {
		names = append(names, "lock-"+algo)
	}
	return names
}

// lockByName resolves a "lock-<algo>" scenario name, or ok=false.
func lockByName(name string, mk func() *arch.Machine) (Scenario, bool) {
	algo, found := strings.CutPrefix(name, "lock-")
	if !found {
		return Scenario{}, false
	}
	for _, known := range usync.Names() {
		if algo == known {
			return LockScenario(mk, algo), true
		}
	}
	return Scenario{}, false
}
