// Package explore is a controlled-scheduling driver over the
// discrete-event engine: a stateless-model-checking-style search of the
// schedule space. The engine's sim.Chooser hook surfaces every instant
// at which more than one event is enabled; an exploration policy
// (seeded random walks, or bounded exhaustive DFS over decision
// prefixes) picks the order instead of the engine's fixed FIFO
// tie-break.
//
// Because the simulation is otherwise deterministic, a run is a pure
// function of its decision trace: any failure replays exactly from the
// recorded choices, and failing traces auto-shrink to a minimal
// decision prefix (choices beyond the prefix default to 0, the FIFO
// order). Scenarios bundle a workload with its invariant oracles —
// system-call consistency at the Table I sync points, no lost or
// double-run UCs, no waiter left asleep after its wake was delivered,
// and the futex/timeline conservation laws (see oracle.go).
package explore

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Scenario is one explorable workload: Run must build a fresh engine,
// install the given chooser on it (plus SetTrapPanics(true) so
// protocol-violation panics become failing runs), drive the workload,
// and return nil only if every invariant oracle holds.
type Scenario struct {
	Name string
	Run  func(ch sim.Chooser) error
}

// Decision records one decision point of a run: the branching factor
// the chooser saw and the index it picked.
type Decision struct {
	N      int // number of events enabled at this instant
	Chosen int // index picked, in [0, N)
}

// Policy selects the exploration strategy.
type Policy int

// Policies.
const (
	// RandomWalk runs Config.Runs independent walks; walk i picks every
	// decision uniformly from a SplitMix64 stream seeded Seed+i.
	RandomWalk Policy = iota
	// DFS exhaustively enumerates decision prefixes up to Depth
	// decisions deep (choices beyond the cap follow the FIFO default),
	// bounded by Config.Runs as a budget when nonzero.
	DFS
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == DFS {
		return "dfs"
	}
	return "random"
}

// ParsePolicy parses the -explore-policy flag values.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "random":
		return RandomWalk, nil
	case "dfs":
		return DFS, nil
	}
	return 0, fmt.Errorf("explore: unknown policy %q (want random or dfs)", s)
}

// Config parameterizes an exploration.
type Config struct {
	Policy Policy
	Runs   int    // random: walk count; dfs: run budget (0 = unbounded)
	Depth  int    // dfs: decision-depth cap (0 = depth 1)
	Seed   uint64 // random: base seed
}

// Failure describes the first failing run found.
type Failure struct {
	Err    string // the oracle violation or trapped panic
	Trace  []int  // the failing run's full decision trace
	Run    int    // index of the failing run
	Seed   uint64 // the walk's seed (RandomWalk only)
	Shrunk []int  // minimal failing decision prefix (see Shrink)
	// ShrunkErr is the failure the shrunk trace reproduces. Shrinking
	// preserves *a* failure, not necessarily the identical message.
	ShrunkErr string
}

// Result summarizes an exploration.
type Result struct {
	Runs      int    // schedules executed (including shrink probes)
	Decisions uint64 // decision points encountered across all runs
	MaxWidth  int    // widest branching factor seen
	Complete  bool   // DFS only: the bounded space was exhausted
	Failure   *Failure
}

// recorder is the sim.Chooser the explorer installs: it delegates each
// decision to pick(k, n) (k = decision index, n = branching factor) and
// records the choice.
type recorder struct {
	pick func(k, n int) int
	ds   []Decision
}

// Choose implements sim.Chooser.
func (r *recorder) Choose(_ sim.Time, cands []sim.Candidate) int {
	k, n := len(r.ds), len(cands)
	idx := r.pick(k, n)
	if idx < 0 || idx >= n {
		idx = 0
	}
	r.ds = append(r.ds, Decision{N: n, Chosen: idx})
	return idx
}

// prefixPick follows the given choice prefix, then the FIFO default.
func prefixPick(prefix []int) func(k, n int) int {
	return func(k, n int) int {
		if k < len(prefix) {
			return prefix[k]
		}
		return 0
	}
}

// runOne executes the scenario under a recording chooser. Panics that
// escape the scenario (engine-goroutine panics are already trapped by
// SetTrapPanics; this guards the scenario's own driver code and
// oracles) are converted into errors so exploration survives them.
func runOne(s Scenario, pick func(k, n int) int) (ds []Decision, err error) {
	rec := &recorder{pick: pick}
	defer func() {
		ds = rec.ds
		if r := recover(); r != nil {
			err = fmt.Errorf("explore: scenario panic: %v", r)
		}
	}()
	err = s.Run(rec)
	return ds, err
}

// note folds one run's decision trace into the result statistics.
func (r *Result) note(ds []Decision) {
	r.Runs++
	r.Decisions += uint64(len(ds))
	for _, d := range ds {
		if d.N > r.MaxWidth {
			r.MaxWidth = d.N
		}
	}
}

// choices extracts the raw choice trace.
func choices(ds []Decision) []int {
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = d.Chosen
	}
	return out
}

// Explore searches the scenario's schedule space under the given
// configuration, stopping at the first failure (which is shrunk before
// returning).
func Explore(s Scenario, cfg Config) Result {
	if cfg.Policy == DFS {
		return exploreDFS(s, cfg)
	}
	return exploreRandom(s, cfg)
}

func exploreRandom(s Scenario, cfg Config) Result {
	var res Result
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		seed := cfg.Seed + uint64(i)
		rng := sim.NewRNG(seed)
		ds, err := runOne(s, func(_, n int) int { return rng.Intn(n) })
		res.note(ds)
		if err != nil {
			res.fail(s, &Failure{Err: err.Error(), Trace: choices(ds), Run: i, Seed: seed})
			return res
		}
	}
	return res
}

func exploreDFS(s Scenario, cfg Config) Result {
	var res Result
	depth := cfg.Depth
	if depth <= 0 {
		depth = 1
	}
	var prefix []int
	for {
		if cfg.Runs > 0 && res.Runs >= cfg.Runs {
			return res // budget exhausted before the space was
		}
		ds, err := runOne(s, prefixPick(prefix))
		res.note(ds)
		if err != nil {
			res.fail(s, &Failure{Err: err.Error(), Trace: choices(ds), Run: res.Runs - 1})
			return res
		}
		// Backtrack: advance the deepest in-cap decision that still has
		// an unexplored sibling; all of them exhausted means the bounded
		// space is fully searched.
		limit := len(ds)
		if depth < limit {
			limit = depth
		}
		i := limit - 1
		for ; i >= 0; i-- {
			if ds[i].Chosen+1 < ds[i].N {
				break
			}
		}
		if i < 0 {
			res.Complete = true
			return res
		}
		prefix = append(prefix[:0], choices(ds[:i])...)
		prefix = append(prefix, ds[i].Chosen+1)
	}
}

// fail attaches a failure, shrinking its trace first.
func (r *Result) fail(s Scenario, f *Failure) {
	f.Shrunk, f.ShrunkErr = Shrink(s, f.Trace, func(ds []Decision) { r.note(ds) })
	r.Failure = f
}

// Shrink minimizes a failing decision trace: trailing zeros are
// stripped (beyond-prefix choices default to 0 anyway), the shortest
// failing prefix is found by bisection, and each surviving choice is
// greedily decremented toward the FIFO default. The returned prefix
// still fails (with the returned error); onRun, if non-nil, observes
// every probe run for accounting.
func Shrink(s Scenario, trace []int, onRun func([]Decision)) ([]int, string) {
	cur := append([]int(nil), trace...)
	lastErr := ""
	fails := func(c []int) bool {
		ds, err := runOne(s, prefixPick(c))
		if onRun != nil {
			onRun(ds)
		}
		if err != nil {
			lastErr = err.Error()
			return true
		}
		return false
	}
	strip := func(c []int) []int {
		for len(c) > 0 && c[len(c)-1] == 0 {
			c = c[:len(c)-1]
		}
		return c
	}
	cur = strip(cur)
	if !fails(cur) {
		// Flaky outside the engine's control (should not happen with a
		// deterministic scenario); keep the original trace unshrunk.
		return trace, ""
	}
	// Bisect the prefix length. Invariant: cur[:hi] fails.
	lo, hi := 0, len(cur)
	for lo < hi {
		mid := (lo + hi) / 2
		if fails(cur[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur = strip(cur[:hi])
	// Greedy point decrements until a fixed point.
	for improved := true; improved; {
		improved = false
		for i := len(cur) - 1; i >= 0; i-- {
			for cur[i] > 0 {
				trial := append([]int(nil), cur...)
				trial[i]--
				if !fails(strip(trial)) {
					break
				}
				cur[i]--
				cur = strip(cur)
				improved = true
				if i >= len(cur) {
					break
				}
			}
		}
	}
	// Re-establish lastErr as the final prefix's failure (the loop above
	// may have left lastErr from a rejected probe).
	fails(cur)
	return cur, lastErr
}

// Replay executes the scenario under the given decision prefix and
// returns the full decision trace plus the scenario error (nil when
// every oracle held).
func Replay(s Scenario, prefix []int) ([]Decision, error) {
	return runOne(s, prefixPick(prefix))
}

// TraceString renders a choice trace for the -explore-trace flag.
func TraceString(trace []int) string {
	parts := make([]string, len(trace))
	for i, c := range trace {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

// ParseTrace parses TraceString's output.
func ParseTrace(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("explore: bad trace element %q", p)
		}
		out[i] = v
	}
	return out, nil
}
