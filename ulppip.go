// Package ulppip is the public API of the ULP-PiP reproduction: Bi-Level
// Threads and User-Level Processes over address-space sharing (Hori,
// Gerofi, Ishikawa — IPPS 2020), rebuilt on a deterministic simulated
// machine.
//
// The package re-exports the stable surface of the internal packages:
//
//	sim     — the discrete-event engine (virtual time)
//	arch    — the two evaluation machines, Wallaby (x86_64) and
//	          Albireo (AArch64), with their calibrated cost models
//	kernel  — the simulated OS: kernel contexts, cores, system-calls
//	loader  — PIE images and dlmopen-style namespaces
//	pip     — Process-in-Process address-space sharing
//	blt     — bi-level threads (couple/decouple)
//	core    — the ULP-PiP runtime (user-level processes)
//	aio     — the POSIX AIO baseline
//	bench   — the paper's tables, figures and ablations
//
// Quick start:
//
//	s := ulppip.NewSim(ulppip.Wallaby())
//	ulppip.Boot(s.Kernel, ulppip.Config{
//	        ProgCores:    []int{0, 1},
//	        SyscallCores: []int{2, 3},
//	        Idle:         ulppip.IdleBusyWait,
//	}, func(rt *ulppip.Runtime) int {
//	        rt.Spawn(prog, ulppip.ULPSpawnOpts{Scheduler: -1})
//	        rt.WaitAll()
//	        rt.Shutdown()
//	        return 0
//	})
//	s.Run()
package ulppip

import (
	"repro/internal/aio"
	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/pip"
	"repro/internal/sim"
	"repro/internal/tasking"
	"repro/internal/timeline"
)

// Simulation engine.
type (
	// Engine is the deterministic discrete-event simulator.
	Engine = sim.Engine
	// Time is a virtual-time instant (picoseconds).
	Time = sim.Time
	// Duration is a virtual-time span (picoseconds).
	Duration = sim.Duration
	// Tracer records engine and runtime events.
	Tracer = sim.Tracer
	// TraceEvent is one rendered tracer record.
	TraceEvent = sim.TraceEvent
	// TraceMeta attributes an event to a task, PID and core.
	TraceMeta = sim.Meta
	// TracePhase distinguishes logs, instants and span begin/end pairs.
	TracePhase = sim.Phase
)

// Trace phases.
const (
	TracePhLog     = sim.PhLog
	TracePhInstant = sim.PhInstant
	TracePhBegin   = sim.PhBegin
	TracePhEnd     = sim.PhEnd
)

// NewTracer creates a bounded event tracer (install with
// Engine.SetTracer; export with Tracer.Dump or Tracer.DumpChrome).
var NewTracer = sim.NewTracer

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Machine models and kernel.
type (
	// Machine is one simulated evaluation platform.
	Machine = arch.Machine
	// CostModel is a machine's primitive-cost table.
	CostModel = arch.CostModel
	// Kernel is the simulated operating system.
	Kernel = kernel.Kernel
	// Task is a kernel task — the paper's kernel context (KC).
	Task = kernel.Task
	// OpenFlags are open(2) flags for the simulated tmpfs.
	OpenFlags = fs.OpenFlags
)

// Machines.
var (
	// Wallaby is the paper's x86_64 machine (Xeon E5-2650 v2).
	Wallaby = arch.Wallaby
	// Albireo is the paper's AArch64 machine (Opteron A1170).
	Albireo = arch.Albireo
)

// File open flags.
const (
	ORdOnly = fs.ORdOnly
	OWrOnly = fs.OWrOnly
	ORdWr   = fs.ORdWr
	OCreate = fs.OCreate
	OTrunc  = fs.OTrunc
	OAppend = fs.OAppend
)

// Programs and PiP.
type (
	// Image is a PIE program image.
	Image = loader.Image
	// Symbol declares a static (or thread-local) program variable.
	Symbol = loader.Symbol
	// MainFunc is a program entry point.
	MainFunc = loader.MainFunc
	// PiPRoot is a Process-in-Process root process.
	PiPRoot = pip.Root
	// PiPProcess is a spawned PiP task.
	PiPProcess = pip.Process
	// PiPEnv is the environment a plain PiP program's Main receives.
	PiPEnv = pip.Env
	// PiPBarrier synchronizes PiP tasks through the shared space.
	PiPBarrier = pip.Barrier
)

// PiP execution modes.
const (
	PiPProcessMode = pip.ProcessMode
	PiPThreadMode  = pip.ThreadMode
)

// PiPLaunch starts a PiP root process.
var PiPLaunch = pip.Launch

// NewPiPBarrier allocates a barrier in the calling task's address space.
var NewPiPBarrier = pip.NewBarrier

// Bi-level threads.
type (
	// BLT is a bi-level thread.
	BLT = blt.BLT
	// BLTPool manages scheduler BLTs and spawned BLTs.
	BLTPool = blt.Pool
	// BLTConfig configures a pool.
	BLTConfig = blt.Config
	// BLTSpawnOpts parameterizes BLTPool.Spawn.
	BLTSpawnOpts = blt.SpawnOpts
	// IdlePolicy selects how idle KCs wait.
	IdlePolicy = blt.IdlePolicy
)

// Idle policies (paper §VI-C).
const (
	IdleBusyWait = blt.BusyWait
	IdleBlocking = blt.Blocking
)

// NewBLTPool creates a BLT pool owned by the creator task.
var NewBLTPool = blt.NewPool

// ULP-PiP runtime (the paper's contribution).
type (
	// Runtime is a live ULP-PiP instance.
	Runtime = core.Runtime
	// Config deploys the runtime over program and syscall cores.
	Config = core.Config
	// ULP is a user-level process.
	ULP = core.ULP
	// Env is the handle a ULP program's Main receives.
	Env = core.Env
	// ULPSpawnOpts parameterizes Runtime.Spawn.
	ULPSpawnOpts = core.SpawnOpts
	// SignalMode selects fcontext/ucontext-style switching (§VII).
	SignalMode = core.SignalMode
	// Violation is one recorded system-call consistency violation.
	Violation = core.Violation
)

// Signal modes.
const (
	FcontextMode = core.FcontextMode
	UcontextMode = core.UcontextMode
)

// Boot creates a ULP-PiP runtime inside a fresh PiP root.
var Boot = core.Boot

// MPI-like message passing over ULP ranks (the paper's §III motivation).
type (
	// MPIWorld is one communicator of ULP ranks.
	MPIWorld = mpi.World
	// MPIRank is one rank's handle inside its program.
	MPIRank = mpi.Rank
	// MPIConfig deploys a world over program/syscall cores.
	MPIConfig = mpi.Config
	// MPIOp is a reduction operator.
	MPIOp = mpi.Op
)

// MPI constants.
const (
	MPIAnySource = mpi.AnySource
	MPIAnyTag    = mpi.AnyTag
	MPISum       = mpi.OpSum
	MPIMax       = mpi.OpMax
	MPIMin       = mpi.OpMin
)

// MPIRun boots a runtime and runs size ranks of the given program.
var MPIRun = mpi.Run

// BOLT-style task parallelism over BLT workers (§III: OpenMP over ULTs).
type (
	// TaskRuntime is a worker pool of BLTs serving a task queue.
	TaskRuntime = tasking.Runtime
	// TaskConfig configures the pool.
	TaskConfig = tasking.Config
	// TaskCtx is the handle a running task receives.
	TaskCtx = tasking.TaskCtx
	// TaskGroup is a nested fork-join group (taskgroup/taskwait).
	TaskGroup = tasking.Group
	// TaskFunc is a task body.
	TaskFunc = tasking.Func
)

// NewTaskRuntime creates a tasking runtime owned by the creator task.
var NewTaskRuntime = tasking.New

// Scheduling timelines (install with Kernel.SetTimeline).
type (
	// TimelineRecorder accumulates per-core occupancy spans.
	TimelineRecorder = timeline.Recorder
	// TimelineSpan is one contiguous occupancy of a core by a task.
	TimelineSpan = timeline.Span
)

// NewTimeline creates an empty timeline recorder.
var NewTimeline = timeline.New

// AIO baseline.
type (
	// AIOContext is a glibc-style asynchronous I/O context.
	AIOContext = aio.Context
	// AIORequest is one asynchronous operation (aiocb).
	AIORequest = aio.Request
)

// NewAIO creates an AIO context owned by a task.
var NewAIO = aio.New

// AIOInProgress is the EINPROGRESS sentinel returned by AIORequest.Return
// before the operation completes.
var AIOInProgress = aio.ErrInProgress

// Deterministic fault injection (install with Kernel.SetFaultPlane; see
// DESIGN.md §6).
type (
	// FaultSpec is one fault-injection rule: a site, a firing rule and
	// an optional task-name scope.
	FaultSpec = fault.Spec
	// FaultPlane is a seeded deterministic set of fault specs.
	FaultPlane = fault.Plane
)

// NewFaultPlane builds a fault plane from a seed and specs.
var NewFaultPlane = fault.NewPlane

// ParseFaultSpecs parses the ulpsim -faults flag syntax.
var ParseFaultSpecs = fault.ParseSpecs

// Fault-injection sites.
const (
	FaultOpen          = fault.SiteOpen
	FaultWrite         = fault.SiteWrite
	FaultRead          = fault.SiteRead
	FaultFutexWait     = fault.SiteFutexWait
	FaultFutexSpurious = fault.SiteFutexSpurious
	FaultFutexLostWake = fault.SiteFutexLostWake
	FaultKCKill        = fault.SiteKCKill
	FaultSchedKill     = fault.SiteSchedKill
	FaultAIOHelperKill = fault.SiteAIOHelperKill
	FaultSchedDelay    = fault.SiteSchedDelay
	FaultFSSlow        = fault.SiteFSSlow
)

// Deterministic metrics plane (install with Kernel.SetMetrics; see
// DESIGN.md §7).
type (
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = metrics.Registry
	// MetricsCounter is a monotonically increasing count.
	MetricsCounter = metrics.Counter
	// MetricsGauge is an instantaneous value with max tracking.
	MetricsGauge = metrics.Gauge
	// MetricsHistogram is a log₂-bucketed latency/depth distribution.
	MetricsHistogram = metrics.Histogram
	// MetricsSample is one flattened metric value from Snapshot.
	MetricsSample = metrics.Sample
)

// NewMetricsRegistry creates an empty metrics registry.
var NewMetricsRegistry = metrics.NewRegistry

// Controlled-scheduling exploration (install a Chooser with
// Engine.SetChooser; see DESIGN.md §8).
type (
	// Chooser resolves same-instant event ties; the engine consults it
	// whenever more than one event is enabled at the earliest timestamp.
	Chooser = sim.Chooser
	// ChoiceCandidate describes one tied event offered to a Chooser.
	ChoiceCandidate = sim.Candidate
	// ExploreScenario is a replayable workload for the explorer.
	ExploreScenario = explore.Scenario
	// ExploreConfig selects the exploration policy and bounds.
	ExploreConfig = explore.Config
	// ExploreResult summarizes an exploration, including any shrunk
	// failing schedule.
	ExploreResult = explore.Result
	// ExplorePolicy is the schedule-search strategy.
	ExplorePolicy = explore.Policy
)

// Exploration policies.
const (
	ExploreRandomWalk = explore.RandomWalk
	ExploreDFS        = explore.DFS
)

// Explore searches a scenario's schedule space under a policy.
var Explore = explore.Explore

// ExploreReplay re-executes a scenario under a recorded decision prefix.
var ExploreReplay = explore.Replay

// ExploreScenarioByName builds one of the stock exploration scenarios.
var ExploreScenarioByName = explore.ByName

// Invariant oracles usable outside the explorer as well.
var (
	// CheckFutexClaims checks the kill-safe futex wake-claim law.
	CheckFutexClaims = explore.CheckFutexClaims
	// CheckFutexConservation checks the full futex ledger at quiescence.
	CheckFutexConservation = explore.CheckFutexConservation
	// CheckTimelineConservation checks spans against per-core busy time.
	CheckTimelineConservation = explore.CheckTimelineConservation
)

// Sim bundles an engine with a kernel for one machine — the usual entry
// point.
type Sim struct {
	Engine *Engine
	Kernel *Kernel
}

// NewSim builds a simulated machine instance.
func NewSim(m *Machine) *Sim {
	e := sim.New()
	return &Sim{Engine: e, Kernel: kernel.New(e, m)}
}

// Run drives the simulation until all work completes.
func (s *Sim) Run() error { return s.Engine.Run() }

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.Engine.Now() }
