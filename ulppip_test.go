package ulppip_test

// Integration tests that exercise the public facade exactly as a
// downstream user would, spanning the full stack: ULP-PiP, plain PiP,
// BLT pools, MPI ranks, tasking, and AIO — all through the re-exported
// API only.

import (
	"errors"
	"fmt"
	"testing"

	ulppip "repro"
)

func ulpProg(name string, main ulppip.MainFunc) *ulppip.Image {
	return &ulppip.Image{
		Name: name, PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{
			{Name: "state", Size: 64},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: main,
	}
}

func stdConfig() ulppip.Config {
	return ulppip.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBusyWait,
		Audit:        true,
	}
}

func TestFacadeULPLifecycle(t *testing.T) {
	s := ulppip.NewSim(ulppip.Wallaby())
	consistent := true
	prog := ulpProg("p", func(envI interface{}) int {
		env := envI.(*ulppip.Env)
		env.Decouple()
		if env.Getpid() != env.U.KC().TGID() {
			consistent = false
		}
		env.Couple()
		return env.U.Rank
	})
	ulppip.Boot(s.Kernel, stdConfig(), func(rt *ulppip.Runtime) int {
		for i := 0; i < 4; i++ {
			if _, err := rt.Spawn(prog, ulppip.ULPSpawnOpts{Scheduler: -1}); err != nil {
				t.Error(err)
				return 1
			}
		}
		statuses, err := rt.WaitAll()
		if err != nil {
			t.Error(err)
		}
		for i, st := range statuses {
			if st != i {
				t.Errorf("status[%d] = %d", i, st)
			}
		}
		if n := len(rt.Violations()); n != 0 {
			t.Errorf("%d violations", n)
		}
		rt.Shutdown()
		return 0
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !consistent {
		t.Error("getpid inconsistent through facade")
	}
}

func TestFacadeMPI(t *testing.T) {
	s := ulppip.NewSim(ulppip.Albireo())
	_, statuses, err := ulppip.MPIRun(s.Kernel, ulppip.MPIConfig{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBlocking,
	}, 4, func(r *ulppip.MPIRank) int {
		sum, err := r.Allreduce(ulppip.MPISum, []float64{float64(r.Rank())})
		if err != nil || sum[0] != 6 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != 0 {
			t.Errorf("rank %d status %d", i, st)
		}
	}
}

func TestFacadeTasking(t *testing.T) {
	s := ulppip.NewSim(ulppip.Wallaby())
	total := 0
	root := s.Kernel.NewTask("main", s.Kernel.NewAddressSpace(), func(task *ulppip.Task) int {
		rt, err := ulppip.NewTaskRuntime(task, ulppip.TaskConfig{
			ProgCores:    []int{0, 1},
			SyscallCores: []int{2, 3},
			Idle:         ulppip.IdleBusyWait,
			Workers:      4,
		})
		if err != nil {
			t.Error(err)
			return 1
		}
		rt.Run(task, func(tc *ulppip.TaskCtx) {
			tc.ParallelFor(32, 8, func(sub *ulppip.TaskCtx, i int) {
				sub.Compute(ulppip.Microsecond)
				total += i
			})
		})
		rt.Shutdown(task)
		return 0
	})
	s.Kernel.Start(root, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 31*32/2 {
		t.Errorf("total = %d", total)
	}
}

func TestFacadePiPAndAIO(t *testing.T) {
	s := ulppip.NewSim(ulppip.Wallaby())
	img := ulpProg("writer", func(envI interface{}) int {
		env := envI.(*ulppip.PiPEnv)
		task := env.Task()
		ctx, err := ulppip.NewAIO(task)
		if err != nil {
			return 1
		}
		fd, err := task.Open(fmt.Sprintf("/aio.%d", env.Proc.Rank), ulppip.OCreate|ulppip.OWrOnly)
		if err != nil {
			return 2
		}
		r, err := ctx.WriteAsync(task, fd, make([]byte, 4096))
		if err != nil {
			return 3
		}
		for {
			if _, err := r.Return(task); !errors.Is(err, ulppip.AIOInProgress) {
				if err != nil {
					return 4
				}
				break
			}
			task.SchedYield()
		}
		task.Close(fd)
		ctx.Close(task)
		return 0
	})
	ulppip.PiPLaunch(s.Kernel, "root", func(root *ulppip.PiPRoot) int {
		for i := 0; i < 2; i++ {
			if _, err := root.Spawn(img, ulppip.PiPProcessMode, nil); err != nil {
				t.Error(err)
				return 1
			}
		}
		for i := 0; i < 2; i++ {
			if _, st, err := root.WaitAny(); err != nil || st != 0 {
				t.Errorf("wait: st=%d err=%v", st, err)
			}
		}
		return 0
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if files := s.Kernel.FS().List(); len(files) != 2 {
		t.Errorf("files = %v", files)
	}
}

func TestFacadeBLTPoolDirect(t *testing.T) {
	s := ulppip.NewSim(ulppip.Albireo())
	root := s.Kernel.NewTask("main", s.Kernel.NewAddressSpace(), func(task *ulppip.Task) int {
		pool, err := ulppip.NewBLTPool(task, ulppip.BLTConfig{
			ProgCores:    []int{0},
			SyscallCores: []int{2},
			Idle:         ulppip.IdleBlocking,
		})
		if err != nil {
			t.Error(err)
			return 1
		}
		pids := map[int]bool{}
		b, err := pool.Spawn(func(b *ulppip.BLT) int {
			b.Decouple()
			b.Exec(func(kc *ulppip.Task) { pids[kc.Getpid()] = true })
			b.Couple()
			return 0
		}, ulppip.BLTSpawnOpts{Name: "x", Scheduler: -1})
		if err != nil {
			t.Error(err)
			return 1
		}
		task.Wait()
		if !pids[b.KC().TGID()] || len(pids) != 1 {
			t.Errorf("pids = %v, want only %d", pids, b.KC().TGID())
		}
		pool.Shutdown(task)
		return 0
	})
	s.Kernel.Start(root, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	// Two identical runs of a nontrivial scenario must end at the exact
	// same virtual time — the engine's core guarantee, end to end.
	run := func() ulppip.Time {
		s := ulppip.NewSim(ulppip.Wallaby())
		prog := ulpProg("d", func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			env.Decouple()
			for i := 0; i < 5; i++ {
				env.Getpid()
				env.Yield()
			}
			env.Couple()
			return 0
		})
		ulppip.Boot(s.Kernel, stdConfig(), func(rt *ulppip.Runtime) int {
			for i := 0; i < 6; i++ {
				rt.Spawn(prog, ulppip.ULPSpawnOpts{Scheduler: -1})
			}
			rt.WaitAll()
			rt.Shutdown()
			return 0
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs ended at %v and %v", a, b)
	}
}
