// mpi_stencil runs a 1-D halo-exchange stencil — the canonical MPI
// communication pattern — with ranks implemented as user-level
// processes, and shows the latency hiding the paper targets (§III):
// with over-subscribed ULP ranks, a rank blocked in Recv yields its
// program core in ~150 ns to a rank that has work, so the same two
// cores finish more ranks' work per unit time than one-rank-per-core
// scheduling would suggest.
package main

import (
	"fmt"
	"log"

	ulppip "repro"
)

const (
	cells  = 512 // cells per rank
	rounds = 6
)

func main() {
	fmt.Printf("%-8s %-8s %14s %16s\n", "ranks", "cores", "makespan[us]", "cell-steps/us")
	for _, ranks := range []int{2, 4, 8, 16} {
		d := runStencil(ranks)
		work := float64(ranks * rounds * cells)
		fmt.Printf("%-8d %-8d %14.1f %16.2f\n",
			ranks, 2, d.Microseconds(), work/d.Microseconds())
	}
}

func runStencil(ranks int) ulppip.Duration {
	s := ulppip.NewSim(ulppip.Wallaby())
	var makespan ulppip.Duration

	// Each rank holds `cells` float64 cells plus two halo cells, and
	// per round: exchange halos with neighbors, then "compute" (a time
	// charge proportional to the cell count), then allreduce a residual.
	program := func(r *ulppip.MPIRank) int {
		env := r.Env()
		left := (r.Rank() + r.Size() - 1) % r.Size()
		right := (r.Rank() + 1) % r.Size()
		cellsBuf := make([]byte, 8*cells)

		// Exclude spawn cost (dlmopen + clone) from the timing: sync
		// everyone, then let rank 0 take the clock.
		if err := r.Barrier(); err != nil {
			return 9
		}
		var t0 ulppip.Time
		if r.Rank() == 0 {
			t0 = env.Carrier().Kernel().Engine().Now()
		}
		residual := float64(r.Rank() + 1)
		for round := 0; round < rounds; round++ {
			// Halo exchange: send boundary cells both ways.
			if err := r.Send(right, 100+round, cellsBuf[len(cellsBuf)-8:]); err != nil {
				return 1
			}
			if err := r.Send(left, 200+round, cellsBuf[:8]); err != nil {
				return 1
			}
			if _, _, _, err := r.Recv(left, 100+round); err != nil {
				return 2
			}
			if _, _, _, err := r.Recv(right, 200+round); err != nil {
				return 2
			}
			// Stencil sweep: ~4 ns per cell of simulated FLOPs.
			env.Compute(ulppip.Duration(cells*4) * ulppip.Nanosecond)
			// Global residual (converges in lockstep).
			out, err := r.Allreduce(ulppip.MPIMax, []float64{residual})
			if err != nil {
				return 3
			}
			residual = out[0] / 2
		}
		if err := r.Barrier(); err != nil {
			return 9
		}
		if r.Rank() == 0 {
			makespan = env.Carrier().Kernel().Engine().Now().Sub(t0)
		}
		return 0
	}

	w, statuses, err := ulppip.MPIRun(s.Kernel, ulppip.MPIConfig{
		ProgCores:    []int{0, 1}, // fixed: ranks oversubscribe these
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBusyWait,
	}, ranks, program)
	if err != nil {
		log.Fatal(err)
	}
	for i, st := range statuses {
		if st != 0 {
			log.Fatalf("rank %d exited with %d", i, st)
		}
	}
	eager, rndv, bytes := w.Stats()
	_ = eager
	_ = rndv
	_ = bytes
	return makespan
}
