// aio_overlap reproduces the paper's headline comparison (Figs. 7/8) for
// a single write size, end to end on the public API: how much of a tmpfs
// open-write-close can be hidden behind computation,
//
//   - with Linux-style AIO (a helper thread runs only the write; open and
//     close stay synchronous), vs
//   - with ULP-PiP (the whole system-call series migrates to a dedicated
//     syscall core via couple()/decouple(), while another ULP computes).
//
// The overlap ratio uses the Intel MPI Benchmarks formula the paper
// cites.
package main

import (
	"errors"
	"fmt"
	"log"

	ulppip "repro"
)

const writeSize = 16 * 1024

func main() {
	for _, machine := range []*ulppip.Machine{ulppip.Wallaby(), ulppip.Albireo()} {
		fmt.Printf("=== %s (%s), %d-byte writes ===\n", machine.Name, machine.Arch, writeSize)
		tPure := measurePure(machine)
		tAIO := measureAIO(machine, tPure)
		tULP := measureULP(machine, tPure)
		fmt.Printf("  pure open-write-close: %v\n", tPure)
		fmt.Printf("  AIO overlapped run:    %v  -> overlap %5.1f%%\n", tAIO, overlap(tPure, tPure, tAIO))
		fmt.Printf("  ULP overlapped run:    %v  -> overlap %5.1f%%\n", tULP, overlap(tPure, tPure, tULP))
	}
}

// measurePure times one synchronous open-write-close (t_pure).
func measurePure(m *ulppip.Machine) ulppip.Duration {
	var d ulppip.Duration
	s := ulppip.NewSim(m)
	task := s.Kernel.NewTask("main", s.Kernel.NewAddressSpace(), func(t *ulppip.Task) int {
		buf := make([]byte, writeSize)
		owc(t, buf) // warm-up
		start := s.Now()
		owc(t, buf)
		d = s.Now().Sub(start)
		return 0
	})
	s.Kernel.Start(task, 0)
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return d
}

func owc(t *ulppip.Task, buf []byte) {
	fd, err := t.Open("/data", ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
	if err != nil {
		log.Fatal(err)
	}
	t.Write(fd, buf, false)
	t.Close(fd)
}

// measureAIO times open + aio_write + compute + aio_return-poll + close.
func measureAIO(m *ulppip.Machine, tCPU ulppip.Duration) ulppip.Duration {
	var d ulppip.Duration
	s := ulppip.NewSim(m)
	task := s.Kernel.NewTask("main", s.Kernel.NewAddressSpace(), func(t *ulppip.Task) int {
		buf := make([]byte, writeSize)
		ctx, err := ulppip.NewAIO(t)
		if err != nil {
			log.Fatal(err)
		}
		run := func() {
			fd, _ := t.Open("/data", ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
			r, err := ctx.WriteAsync(t, fd, buf)
			if err != nil {
				log.Fatal(err)
			}
			t.Compute(tCPU)
			for {
				if _, err := r.Return(t); !errors.Is(err, ulppip.AIOInProgress) {
					break
				}
				t.SchedYield()
			}
			t.Close(fd)
		}
		run() // warm-up (creates the helper thread)
		start := s.Now()
		run()
		d = s.Now().Sub(start)
		ctx.Close(t)
		return 0
	})
	s.Kernel.Start(task, 0)
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return d
}

// measureULP times the two-ULP overlapped run: one ULP brackets the
// open-write-close (running it on the dedicated syscall core), the other
// computes on the shared program core.
func measureULP(m *ulppip.Machine, tCPU ulppip.Duration) ulppip.Duration {
	var d ulppip.Duration
	s := ulppip.NewSim(m)
	ready := 0
	var phase [2]int
	barrier := func(env *ulppip.Env, self, iter int) {
		phase[self] = iter + 1
		for phase[1-self] < iter+1 {
			env.Yield()
		}
	}
	const iters = 2 // warm-up + measured
	var t0, t1 ulppip.Time
	ioProg := &ulppip.Image{
		Name: "io", PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			env.Decouple()
			ready++
			for ready < 2 {
				env.Yield()
			}
			buf := make([]byte, writeSize)
			for i := 0; i < iters; i++ {
				if i == iters-1 {
					t0 = s.Now()
				}
				env.Exec(func(kc *ulppip.Task) {
					fd, _ := kc.Open("/data", ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
					kc.Write(fd, buf, true)
					kc.Close(fd)
				})
				barrier(env, 0, i)
			}
			t1 = s.Now()
			env.Couple()
			return 0
		},
	}
	cpuProg := &ulppip.Image{
		Name: "cpu", PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			env.Decouple()
			ready++
			for ready < 2 {
				env.Yield()
			}
			for i := 0; i < iters; i++ {
				env.Compute(tCPU)
				barrier(env, 1, i)
			}
			env.Couple()
			return 0
		},
	}
	if _, err := ulppip.Boot(s.Kernel, ulppip.Config{
		ProgCores:    []int{0}, // both ULPs share ONE program core
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBusyWait,
	}, func(rt *ulppip.Runtime) int {
		rt.Spawn(ioProg, ulppip.ULPSpawnOpts{Scheduler: 0})
		rt.Spawn(cpuProg, ulppip.ULPSpawnOpts{Scheduler: 0})
		rt.WaitAll()
		rt.Shutdown()
		return 0
	}); err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	d = t1.Sub(t0)
	return d
}

// overlap is the IMB formula.
func overlap(tPure, tCPU, tOvrl ulppip.Duration) float64 {
	den := tPure
	if tCPU < den {
		den = tCPU
	}
	ratio := float64(tPure+tCPU-tOvrl) / float64(den)
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	return 100 * ratio
}
