// oversubscribe runs the paper's Fig. 6 deployment: CPU cores split into
// a program partition (scheduler BLTs running decoupled ULPs) and a
// dedicated system-call partition (original KCs), with the BLT count set
// by the over-subscription factor O (paper Eq. 2: NB = NCprog * (O+1)).
//
// Each ULP alternates computation with a bracketed open-write-close.
// Over-subscription hides the system-call latency: while one ULP's I/O
// runs on a syscall core, the program core immediately switches (in
// ~150 ns, Table IV) to another ready ULP. The makespan per operation
// drops accordingly until the syscall cores saturate.
package main

import (
	"fmt"
	"log"

	ulppip "repro"
)

const (
	progCores = 2
	opsPerULP = 8
	computeUS = 5
)

func main() {
	m := ulppip.Wallaby()
	fmt.Printf("machine=%s  prog cores=%d  syscall cores=2  compute=%dus/op\n",
		m.Name, progCores, computeUS)
	fmt.Printf("%-4s %-6s %14s %14s\n", "O", "ULPs", "makespan[us]", "us/op")
	for _, oversub := range []int{0, 1, 2, 3, 7} {
		makespan := run(oversub)
		n := progCores * (oversub + 1)
		ops := float64(n * opsPerULP)
		fmt.Printf("%-4d %-6d %14.1f %14.2f\n",
			oversub, n, makespan.Microseconds(), makespan.Microseconds()/ops)
	}
}

func run(oversub int) ulppip.Duration {
	s := ulppip.NewSim(ulppip.Wallaby())
	numULPs := progCores * (oversub + 1)

	worker := &ulppip.Image{
		Name: "worker", PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			buf := make([]byte, 4096)
			for i := 0; i < opsPerULP; i++ {
				env.Compute(computeUS * ulppip.Microsecond)
				env.Exec(func(kc *ulppip.Task) {
					fd, err := kc.Open(fmt.Sprintf("/out%d", env.U.Rank),
						ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
					if err != nil {
						panic(err)
					}
					kc.Write(fd, buf, true)
					kc.Close(fd)
				})
				env.Yield() // let peers use the program core
			}
			return 0
		},
	}

	var makespan ulppip.Duration
	if _, err := ulppip.Boot(s.Kernel, ulppip.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBlocking,
	}, func(rt *ulppip.Runtime) int {
		start := s.Now()
		for i := 0; i < numULPs; i++ {
			if _, err := rt.Spawn(worker, ulppip.ULPSpawnOpts{
				Scheduler:      -1,
				StartDecoupled: true, // Fig. 6: BLTs run decoupled
			}); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := rt.WaitAll(); err != nil {
			log.Fatal(err)
		}
		makespan = s.Now().Sub(start)
		rt.Shutdown()
		return 0
	}); err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return makespan
}
