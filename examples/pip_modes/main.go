// pip_modes demonstrates the plain Process-in-Process layer (paper §IV)
// under both of its execution modes, without any BLT/ULP machinery:
//
//   - process mode (clone): each PiP task has its own PID and fd table,
//     and the root reaps it with wait(2);
//   - thread mode (pthread_create): PiP tasks share the root's PID, for
//     systems without clone() — yet variable privatization still holds.
//
// A futex-based barrier in the shared address space synchronizes all
// ranks, MPI-style.
package main

import (
	"fmt"
	"log"

	ulppip "repro"
)

const ranks = 4

func main() {
	for _, mode := range []struct {
		name string
		m    interface{ String() string }
	}{
		{"process", ulppip.PiPProcessMode},
		{"thread", ulppip.PiPThreadMode},
	} {
		fmt.Printf("=== PiP %s mode ===\n", mode.name)
		runMode(mode.name == "process")
	}
}

func runMode(processMode bool) {
	s := ulppip.NewSim(ulppip.Albireo())

	var bar *ulppip.PiPBarrier
	pids := make([]int, ranks)
	addrs := make([]uint64, ranks)

	rank := &ulppip.Image{
		Name: "rank", PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{
			{Name: "rank_data", Size: 64},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.PiPEnv)
			r := env.Proc.Rank
			pids[r] = env.Task().Getpid()
			addr, err := env.SymbolAddr("rank_data")
			if err != nil {
				return 1
			}
			addrs[r] = addr
			// Everyone writes its rank into its own privatized copy.
			if err := env.Task().MemWrite(addr, []byte{byte(r + 10)}); err != nil {
				return 2
			}
			if err := bar.Wait(env.Task()); err != nil {
				return 3
			}
			// After the barrier, rank 0 reads every rank's instance
			// directly — shared address space, no IPC.
			if r == 0 {
				for peer := 0; peer < ranks; peer++ {
					b := make([]byte, 1)
					env.Task().MemRead(addrs[peer], b)
					fmt.Printf("  rank0 reads rank%d's rank_data=%d at %#x\n",
						peer, b[0], addrs[peer])
				}
			}
			return 0
		},
	}

	ulppip.PiPLaunch(s.Kernel, "pip-root", func(root *ulppip.PiPRoot) int {
		var err error
		bar, err = ulppip.NewPiPBarrier(root.Task(), ranks)
		if err != nil {
			log.Fatal(err)
		}
		mode := ulppip.PiPProcessMode
		if !processMode {
			mode = ulppip.PiPThreadMode
		}
		procs := make([]*ulppip.PiPProcess, ranks)
		for i := 0; i < ranks; i++ {
			p, err := root.Spawn(rank, mode, nil)
			if err != nil {
				log.Fatal(err)
			}
			procs[i] = p
		}
		if processMode {
			for i := 0; i < ranks; i++ {
				if _, status, err := root.WaitAny(); err != nil || status != 0 {
					log.Fatalf("wait: status=%d err=%v", status, err)
				}
			}
		} else {
			for _, p := range procs {
				if status, err := p.Join(); err != nil || status != 0 {
					log.Fatalf("join: status=%d err=%v", status, err)
				}
			}
		}
		return 0
	})
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}

	distinct := map[int]bool{}
	for _, pid := range pids {
		distinct[pid] = true
	}
	fmt.Printf("  rank PIDs: %v (%d distinct)\n", pids, len(distinct))
}
