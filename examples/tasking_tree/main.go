// tasking_tree runs a nested fork-join workload (a recursive tree sum,
// the classic OpenMP tasking benchmark shape) on the BOLT-style task
// runtime: worker BLTs on two program cores execute a task tree that is
// far wider than the core count. Nested groups never deadlock (waiting
// tasks execute ready children inline), and idle workers park on their
// kernel contexts on the system-call cores instead of burning program
// cores.
//
// Each leaf also writes a marker file inside an Exec bracket, showing
// that system-call consistency composes with task parallelism.
package main

import (
	"fmt"
	"log"

	ulppip "repro"
)

const (
	depth     = 6 // 2^6 = 64 leaves
	leafWork  = 20 * ulppip.Microsecond
	numWorker = 8
)

func main() {
	for _, workers := range []int{1, 2, 4, 8} {
		d, sum := run(workers)
		fmt.Printf("workers=%-3d leaves=64  sum=%-6d  makespan=%10v\n",
			workers, sum, d)
	}
}

func run(workers int) (ulppip.Duration, int) {
	s := ulppip.NewSim(ulppip.Wallaby())
	var makespan ulppip.Duration
	total := 0

	root := s.Kernel.NewTask("main", s.Kernel.NewAddressSpace(), func(task *ulppip.Task) int {
		rt, err := ulppip.NewTaskRuntime(task, ulppip.TaskConfig{
			ProgCores:    []int{0, 1},
			SyscallCores: []int{2, 3},
			Idle:         ulppip.IdleBlocking,
			Workers:      workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := s.Now()
		err = rt.Run(task, func(tc *ulppip.TaskCtx) {
			total = treeSum(tc, depth, 1)
		})
		if err != nil {
			log.Fatal(err)
		}
		makespan = s.Now().Sub(start)
		rt.Shutdown(task)
		return 0
	})
	s.Kernel.Start(root, 0)
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return makespan, total
}

// treeSum forks two subtrees per node; leaves compute and write a
// marker file.
func treeSum(tc *ulppip.TaskCtx, level, id int) int {
	if level == 0 {
		tc.Compute(leafWork)
		tc.Exec(func(kc *ulppip.Task) {
			fd, err := kc.Open(fmt.Sprintf("/leaf.%d", id), ulppip.OCreate|ulppip.OWrOnly)
			if err != nil {
				log.Fatal(err)
			}
			kc.Write(fd, []byte{1}, false)
			kc.Close(fd)
		})
		return 1
	}
	var left, right int
	g := tc.NewGroup()
	g.Spawn(tc, func(sub *ulppip.TaskCtx) {
		left = treeSum(sub, level-1, id*2)
	})
	g.Spawn(tc, func(sub *ulppip.TaskCtx) {
		right = treeSum(sub, level-1, id*2+1)
	})
	g.WaitCtx(tc)
	return left + right
}
