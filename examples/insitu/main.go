// insitu demonstrates the paper's motivating ULP use case (§III):
// coupling two *separate programs* — a physics "simulation" and an
// in-situ "analytics" program — in one address space, without merging
// their code bases. Each runs as a user-level process: privatized
// globals, its own PID and file descriptors, but zero-copy access to the
// other's data through pip_export/pip_import-style address sharing.
//
// The simulation produces field snapshots; the analytics program reads
// them in place (no copy, no IPC) and writes a report to tmpfs inside a
// couple()/decouple() bracket, so the report I/O runs on the dedicated
// system-call core and never blocks the simulation's scheduler.
package main

import (
	"fmt"
	"log"

	ulppip "repro"
)

const (
	steps     = 5
	fieldSize = 4096 // bytes per snapshot
)

func main() {
	s := ulppip.NewSim(ulppip.Wallaby())

	// Shared coordination cells (Go-side runtime state is fine for an
	// example; field data itself lives in simulated memory).
	var fieldAddr uint64
	published := 0 // last step the simulation published
	consumed := 0  // last step analytics finished

	simulation := &ulppip.Image{
		Name: "fluid-sim", PIE: true, TextSize: 8192,
		Symbols: []ulppip.Symbol{
			{Name: "field", Size: fieldSize},
			{Name: "step", Size: 8},
		},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			env.Decouple() // run as a ULT on the program cores
			addr, err := env.SymbolAddr("field")
			if err != nil {
				return 1
			}
			fieldAddr = addr
			if err := env.Export("sim.field", "field"); err != nil {
				return 1
			}
			for step := 1; step <= steps; step++ {
				// "Physics": burn CPU, then write the snapshot into
				// our privatized field array.
				env.Compute(20 * ulppip.Microsecond)
				snap := make([]byte, fieldSize)
				for i := range snap {
					snap[i] = byte(step)
				}
				if err := env.MemWrite(addr, snap); err != nil {
					return 1
				}
				published = step
				// Wait for analytics to catch up before overwriting.
				for consumed < step {
					env.Yield()
				}
			}
			env.Couple()
			return 0
		},
	}

	analytics := &ulppip.Image{
		Name: "insitu-stats", PIE: true, TextSize: 8192,
		Symbols: []ulppip.Symbol{
			{Name: "histogram", Size: 256 * 8},
		},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			env.Decouple()
			// Import the simulation's field: a raw pointer into the
			// shared address space, dereferencable as-is.
			var field uint64
			for {
				if addr, err := env.Import("sim.field"); err == nil {
					field = addr
					break
				}
				env.Yield() // simulation hasn't exported yet
			}
			buf := make([]byte, fieldSize)
			for step := 1; step <= steps; step++ {
				for published < step {
					env.Yield()
				}
				// Zero-copy read of the live field.
				if err := env.MemRead(field, buf); err != nil {
					return 1
				}
				sum := 0
				for _, b := range buf {
					sum += int(b)
				}
				// Write the per-step report on the syscall core; the
				// whole open-write-close series is bracketed so it
				// hits *our* file descriptor table.
				report := fmt.Sprintf("step %d: checksum %d\n", step, sum)
				fd, err := env.Open(fmt.Sprintf("/reports/step%d", step), ulppip.OCreate|ulppip.OWrOnly)
				if err != nil {
					return 1
				}
				env.Write(fd, []byte(report))
				env.Close(fd)
				consumed = step
			}
			env.Couple()
			return 0
		},
	}

	if _, err := ulppip.Boot(s.Kernel, ulppip.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBlocking,
		Audit:        true,
	}, func(rt *ulppip.Runtime) int {
		if _, err := rt.Spawn(simulation, ulppip.ULPSpawnOpts{Scheduler: 0}); err != nil {
			log.Fatal(err)
		}
		if _, err := rt.Spawn(analytics, ulppip.ULPSpawnOpts{Scheduler: 1}); err != nil {
			log.Fatal(err)
		}
		statuses, err := rt.WaitAll()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exit statuses: %v; consistency violations: %d\n",
			statuses, len(rt.Violations()))
		rt.Shutdown()
		return 0
	}); err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}

	// Show the reports the analytics ULP wrote.
	for _, path := range s.Kernel.FS().List() {
		ino, _ := s.Kernel.FS().Stat(path)
		fmt.Printf("%-18s %3d bytes\n", path, ino.Size())
	}
	fmt.Printf("done at virtual time %v; field at %#x\n", s.Now(), fieldAddr)
}
