// Quickstart: boot a ULP-PiP runtime on the simulated x86_64 machine,
// spawn three user-level processes from one PIE image, and demonstrate
// the two headline properties:
//
//  1. variable privatization — each ULP gets its own instance of the
//     image's static variables inside the one shared address space;
//  2. system-call consistency — getpid() inside a couple()/decouple()
//     bracket always returns the ULP's own PID, no matter which kernel
//     context happens to be scheduling it.
package main

import (
	"fmt"
	"log"

	ulppip "repro"
)

func main() {
	s := ulppip.NewSim(ulppip.Wallaby())

	prog := &ulppip.Image{
		Name:     "hello",
		PIE:      true,
		TextSize: 4096,
		Symbols: []ulppip.Symbol{
			{Name: "my_pid", Size: 8},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)

			// Run as a user-level thread: detach from our kernel
			// context so a scheduler core runs us...
			env.Decouple()
			raw := env.GetpidRaw() // whoever carries us right now
			good := env.Getpid()   // couple();getpid();decouple()
			fmt.Printf("  ULP %d: raw getpid=%d (scheduler!), bracketed getpid=%d (mine)\n",
				env.U.Rank, raw, good)

			// Record our PID in our own privatized variable.
			addr, err := env.SymbolAddr("my_pid")
			if err != nil {
				return 1
			}
			env.MemWrite(addr, []byte{byte(good)})

			env.Couple() // terminate as a kernel-level thread
			return 0
		},
	}

	if _, err := ulppip.Boot(s.Kernel, ulppip.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBusyWait,
	}, func(rt *ulppip.Runtime) int {
		fmt.Println("spawning 3 ULPs from one PIE image...")
		for i := 0; i < 3; i++ {
			if _, err := rt.Spawn(prog, ulppip.ULPSpawnOpts{Scheduler: -1}); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := rt.WaitAll(); err != nil {
			log.Fatal(err)
		}

		fmt.Println("privatized my_pid instances (same symbol, distinct addresses):")
		for _, u := range rt.ULPs() {
			addr, _ := u.Linked.SymbolAddr("my_pid")
			b := make([]byte, 1)
			rt.RootTask().MemRead(addr, b)
			fmt.Printf("  ULP %d: &my_pid=%#x  my_pid=%d  (KC pid %d)\n",
				u.Rank, addr, b[0], u.KC().TGID())
		}
		rt.Shutdown()
		return 0
	}); err != nil {
		log.Fatal(err)
	}

	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation finished at virtual time %v\n", s.Now())
}
