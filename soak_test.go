package ulppip_test

// Whole-stack soak: one simulated machine hosting four independent
// tenants at once on disjoint core partitions —
//
//   - an MPI world (4 ranks over ULPs) on cores 0-3,
//   - a ULP-PiP I/O workload on cores 4-7,
//   - plain kernel processes doing pipe IPC on cores 8-9,
//   - a second ULP-PiP workload on cores 10-13 that optionally runs
//     under a task-scoped fault plane (the blast-radius tenant),
//
// all sharing the one kernel, physical memory and tmpfs. Everything must
// complete, stay consistent, and be deterministic — and when the fault
// plane is armed against tenant 4 only, the other three tenants'
// transcripts (statuses, file bytes, pipe bytes, completion times) must
// be byte-identical to the fault-free run: task-scoped specs have no
// blast radius outside their tenant.

import (
	"fmt"
	"testing"

	ulppip "repro"
)

// soakResult captures everything observable about one soak run.
type soakResult struct {
	tenants    string // tenants 1-3 transcript (must not see tenant-4 faults)
	tenant4    string // tenant 4 transcript (may differ under faults)
	injections uint64
	end        ulppip.Time
}

func TestMultiTenantSoak(t *testing.T) {
	r1 := runMultiTenant(t, nil)
	r2 := runMultiTenant(t, nil)
	if r1 != r2 {
		t.Errorf("soak nondeterministic:\n  run1: %+v\n  run2: %+v", r1, r2)
	}
}

// TestSoakFaultIsolation injects faults scoped to tenant 4's tasks only
// (its KCs by name prefix, its schedulers by core) and asserts the other
// three tenants' transcripts are byte-identical to the fault-free run.
func TestSoakFaultIsolation(t *testing.T) {
	base := runMultiTenant(t, nil)
	faulted := runMultiTenant(t, []ulppip.FaultSpec{
		{Site: ulppip.FaultWrite, Every: 2, Err: "eintr", TaskPrefix: "kc.t4"},
		{Site: ulppip.FaultOpen, Nth: 2, Err: "eagain", TaskPrefix: "kc.t4"},
		{Site: ulppip.FaultFutexLostWake, Prob: 0.4, TaskPrefix: "kc.t4"},
		{Site: ulppip.FaultSchedDelay, Every: 3, DelayUS: 25, TaskPrefix: "sched.c10"},
		{Site: ulppip.FaultSchedDelay, Every: 4, DelayUS: 25, TaskPrefix: "sched.c11"},
	})
	if faulted.injections == 0 {
		t.Fatal("no faults fired; the isolation claim went unexercised")
	}
	if base.tenants != faulted.tenants {
		t.Errorf("tenant-4 faults leaked into tenants 1-3:\n  fault-free: %s\n  faulted:    %s",
			base.tenants, faulted.tenants)
	}
	if base.tenant4 == faulted.tenant4 {
		t.Error("tenant 4 transcript unchanged under faults; injection had no effect")
	}
}

func runMultiTenant(t *testing.T, specs []ulppip.FaultSpec) soakResult {
	t.Helper()
	s := ulppip.NewSim(ulppip.Wallaby())
	k := s.Kernel
	var plane *ulppip.FaultPlane
	if specs != nil {
		plane = ulppip.NewFaultPlane(11, specs)
		k.SetFaultPlane(plane)
	}

	// MPIRun drives engine.Run itself, so it must start last: the other
	// tenants only enqueue work here, then the MPI tenant's Run call
	// drives the whole machine.
	mpiDone := false

	// Tenant 2: ULP-PiP workload on cores 4-7.
	var t2Files string
	var t2End ulppip.Time
	prog := &ulppip.Image{
		Name: "tenant2", PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			buf := make([]byte, 2048)
			for j := range buf {
				buf[j] = byte(env.U.Rank*7 + j)
			}
			env.Decouple()
			for i := 0; i < 4; i++ {
				env.Exec(func(kc *ulppip.Task) {
					fd, err := kc.Open(fmt.Sprintf("/t2.%d", env.U.Rank), ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
					if err != nil {
						panic(err)
					}
					kc.Write(fd, buf, true)
					kc.Close(fd)
				})
				env.Yield()
			}
			env.Couple()
			return 0
		},
	}
	if _, err := ulppip.Boot(k, ulppip.Config{
		ProgCores:    []int{4, 5},
		SyscallCores: []int{6, 7},
		Idle:         ulppip.IdleBlocking,
		Audit:        true,
	}, func(rt *ulppip.Runtime) int {
		for i := 0; i < 6; i++ {
			if _, err := rt.Spawn(prog, ulppip.ULPSpawnOpts{Scheduler: -1}); err != nil {
				t.Errorf("tenant2 spawn: %v", err)
				return 1
			}
		}
		if _, err := rt.WaitAll(); err != nil {
			t.Errorf("tenant2 wait: %v", err)
		}
		if n := len(rt.Violations()); n != 0 {
			t.Errorf("tenant2 violations: %d", n)
		}
		// Read every file back: tenant 2's observable output bytes.
		root := rt.RootTask()
		data := make([]byte, 2048)
		for i := 0; i < 6; i++ {
			fd, err := root.Open(fmt.Sprintf("/t2.%d", i), ulppip.ORdOnly)
			if err != nil {
				t.Errorf("tenant2 readback %d: %v", i, err)
				continue
			}
			n, _ := root.Read(fd, data)
			root.Close(fd)
			t2Files += fmt.Sprintf("/t2.%d:%x;", i, data[:n])
		}
		t2End = s.Now()
		rt.Shutdown()
		return 0
	}); err != nil {
		t.Errorf("tenant2 boot: %v", err)
	}

	// Tenant 3: plain processes with pipe IPC pinned to cores 8-9.
	var pipeHash uint64
	pipeTotal := 0
	var pipeEnd ulppip.Time
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	space := k.NewAddressSpace()
	producer := k.NewTask("pipe-writer", space, func(task *ulppip.Task) int {
		r, w := task.NewPipe()
		reader := k.NewTask("pipe-reader", space, func(rt *ulppip.Task) int {
			buf := make([]byte, 8192)
			for {
				n, err := r.Read(rt, buf)
				if err != nil || n == 0 {
					break
				}
				for _, b := range buf[:n] {
					pipeHash = pipeHash*1099511628211 ^ uint64(b)
				}
				pipeTotal += n
			}
			if pipeTotal != 64*1024 {
				t.Errorf("pipe moved %d bytes", pipeTotal)
			}
			pipeEnd = s.Now()
			return 0
		})
		reader.SetAffinity(9)
		k.Start(reader, 0)
		w.Write(task, payload)
		w.Close(task)
		return 0
	})
	producer.SetAffinity(8)
	k.Start(producer, 0)

	// Tenant 4: the blast-radius tenant on cores 10-13. Its ULPs are
	// named t4.* (so their KCs are kc.t4.*) and its schedulers sit on
	// cores 10-11 (sched.c10/sched.c11) — the names the fault specs
	// scope to. It uses the retrying Env wrappers, so injected EINTR and
	// EAGAIN are absorbed; its own transcript may shift under faults, the
	// other tenants' must not.
	var t4Statuses []int
	var t4End ulppip.Time
	prog4 := &ulppip.Image{
		Name: "tenant4", PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			buf := make([]byte, 1024)
			for j := range buf {
				buf[j] = byte(env.U.Rank + j)
			}
			env.Decouple()
			for i := 0; i < 4; i++ {
				fd, err := env.Open(fmt.Sprintf("/t4.%d", env.U.Rank), ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
				if err != nil {
					return 1
				}
				if _, err := env.Write(fd, buf); err != nil {
					return 2
				}
				if err := env.Close(fd); err != nil {
					return 3
				}
				env.Yield()
			}
			env.Couple()
			return 0
		},
	}
	if _, err := ulppip.Boot(k, ulppip.Config{
		ProgCores:    []int{10, 11},
		SyscallCores: []int{12, 13},
		Idle:         ulppip.IdleBlocking,
		Audit:        true,
	}, func(rt *ulppip.Runtime) int {
		for i := 0; i < 4; i++ {
			if _, err := rt.Spawn(prog4, ulppip.ULPSpawnOpts{
				Name: fmt.Sprintf("t4.%d", i), Scheduler: -1,
			}); err != nil {
				t.Errorf("tenant4 spawn: %v", err)
				return 1
			}
		}
		var err error
		t4Statuses, err = rt.WaitAll()
		if err != nil {
			t.Errorf("tenant4 wait: %v", err)
		}
		if n := len(rt.Violations()); n != 0 {
			t.Errorf("tenant4 violations: %d", n)
		}
		t4End = s.Now()
		rt.Shutdown()
		return 0
	}); err != nil {
		t.Errorf("tenant4 boot: %v", err)
	}

	// Tenant 1 last: MPIRun drives the engine for everyone.
	var mpiEnd ulppip.Time
	_, statuses, err2 := ulppip.MPIRun(k, ulppip.MPIConfig{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBusyWait,
	}, 4, func(r *ulppip.MPIRank) int {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		for round := 0; round < 3; round++ {
			if err := r.Send(next, round, []byte{byte(r.Rank())}); err != nil {
				return 1
			}
			if _, _, _, err := r.Recv(prev, round); err != nil {
				return 2
			}
			out, err := r.Allreduce(ulppip.MPISum, []float64{1})
			if err != nil || out[0] != 4 {
				return 3
			}
		}
		mpiDone = true
		mpiEnd = s.Now()
		return 0
	})
	if err2 != nil {
		t.Fatalf("mpi: %v", err2)
	}
	for i, st := range statuses {
		if st != 0 {
			t.Errorf("rank %d status %d", i, st)
		}
	}
	for i, st := range t4Statuses {
		if st != 0 {
			t.Errorf("tenant4 ulp %d status %d", i, st)
		}
	}
	if !mpiDone || t2End == 0 || pipeEnd == 0 || t4End == 0 {
		t.Errorf("tenants done: mpi=%v t2=%v pipe=%v t4=%v", mpiDone, t2End, pipeEnd, t4End)
	}
	// Shared tmpfs saw tenant 2's and tenant 4's files.
	files := k.FS().List()
	if len(files) != 10 {
		t.Errorf("files = %v", files)
	}

	res := soakResult{
		tenants: fmt.Sprintf("mpi=%v end=%v | t2=%s end=%v | pipe=%d:%x end=%v",
			statuses, mpiEnd, t2Files, t2End, pipeTotal, pipeHash, pipeEnd),
		tenant4: fmt.Sprintf("statuses=%v end=%v", t4Statuses, t4End),
		end:     s.Now(),
	}
	if plane != nil {
		res.injections = plane.Injections()
	}
	return res
}
