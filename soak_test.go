package ulppip_test

// Whole-stack soak: one simulated machine hosting three independent
// tenants at once on disjoint core partitions —
//
//   - an MPI world (4 ranks over ULPs) on cores 0-3,
//   - a ULP-PiP I/O workload on cores 4-7,
//   - plain kernel processes doing pipe IPC on cores 8-9,
//
// all sharing the one kernel, physical memory and tmpfs. Everything must
// complete, stay consistent, and be deterministic.

import (
	"fmt"
	"testing"

	ulppip "repro"
)

func TestMultiTenantSoak(t *testing.T) {
	end1 := runMultiTenant(t)
	end2 := runMultiTenant(t)
	if end1 != end2 {
		t.Errorf("soak nondeterministic: %v vs %v", end1, end2)
	}
}

func runMultiTenant(t *testing.T) ulppip.Time {
	t.Helper()
	s := ulppip.NewSim(ulppip.Wallaby())
	k := s.Kernel

	// MPIRun drives engine.Run itself, so it must start last: tenants 2
	// and 3 only enqueue work here, then the MPI tenant's Run call
	// drives the whole machine.
	mpiDone := false

	// Tenant 2: ULP-PiP workload on cores 4-7.
	ulpDone := false
	prog := &ulppip.Image{
		Name: "tenant2", PIE: true, TextSize: 4096,
		Symbols: []ulppip.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*ulppip.Env)
			env.Decouple()
			for i := 0; i < 4; i++ {
				env.Exec(func(kc *ulppip.Task) {
					fd, err := kc.Open(fmt.Sprintf("/t2.%d", env.U.Rank), ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
					if err != nil {
						panic(err)
					}
					kc.Write(fd, make([]byte, 2048), true)
					kc.Close(fd)
				})
				env.Yield()
			}
			env.Couple()
			return 0
		},
	}
	ulppip.Boot(k, ulppip.Config{
		ProgCores:    []int{4, 5},
		SyscallCores: []int{6, 7},
		Idle:         ulppip.IdleBlocking,
		Audit:        true,
	}, func(rt *ulppip.Runtime) int {
		for i := 0; i < 6; i++ {
			if _, err := rt.Spawn(prog, ulppip.ULPSpawnOpts{Scheduler: -1}); err != nil {
				t.Errorf("tenant2 spawn: %v", err)
				return 1
			}
		}
		if _, err := rt.WaitAll(); err != nil {
			t.Errorf("tenant2 wait: %v", err)
		}
		if n := len(rt.Violations()); n != 0 {
			t.Errorf("tenant2 violations: %d", n)
		}
		rt.Shutdown()
		ulpDone = true
		return 0
	})

	// Tenant 3: plain processes with pipe IPC pinned to cores 8-9.
	pipeDone := false
	space := k.NewAddressSpace()
	var pr *ulppip.Task
	producer := k.NewTask("pipe-writer", space, func(task *ulppip.Task) int {
		r, w := task.NewPipe()
		reader := k.NewTask("pipe-reader", space, func(rt *ulppip.Task) int {
			buf := make([]byte, 8192)
			total := 0
			for {
				n, err := r.Read(rt, buf)
				if err != nil || n == 0 {
					break
				}
				total += n
			}
			if total != 64*1024 {
				t.Errorf("pipe moved %d bytes", total)
			}
			pipeDone = true
			return 0
		})
		reader.SetAffinity(9)
		k.Start(reader, 0)
		w.Write(task, make([]byte, 64*1024))
		w.Close(task)
		return 0
	})
	pr = producer
	pr.SetAffinity(8)
	k.Start(pr, 0)

	// Tenant 1 last: MPIRun drives the engine for everyone.
	_, statuses, err2 := ulppip.MPIRun(k, ulppip.MPIConfig{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         ulppip.IdleBusyWait,
	}, 4, func(r *ulppip.MPIRank) int {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		for round := 0; round < 3; round++ {
			if err := r.Send(next, round, []byte{byte(r.Rank())}); err != nil {
				return 1
			}
			if _, _, _, err := r.Recv(prev, round); err != nil {
				return 2
			}
			out, err := r.Allreduce(ulppip.MPISum, []float64{1})
			if err != nil || out[0] != 4 {
				return 3
			}
		}
		mpiDone = true
		return 0
	})
	if err2 != nil {
		t.Fatalf("mpi: %v", err2)
	}
	for i, st := range statuses {
		if st != 0 {
			t.Errorf("rank %d status %d", i, st)
		}
	}
	if !mpiDone || !ulpDone || !pipeDone {
		t.Errorf("tenants done: mpi=%v ulp=%v pipe=%v", mpiDone, ulpDone, pipeDone)
	}
	// Shared tmpfs saw tenant 2's files.
	files := k.FS().List()
	if len(files) != 6 {
		t.Errorf("files = %v", files)
	}
	return s.Now()
}
