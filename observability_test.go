package ulppip_test

// Observability regression tests through the public facade: the metrics
// plane must be deterministic (same seed and configuration produce a
// byte-identical dump — the acceptance criterion of the metrics plane),
// and the Chrome trace export must emit valid trace-event JSON with
// per-core tracks carrying couple/decouple brackets and syscall spans.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	ulppip "repro"
)

// runObservable boots a 4-ULP workload (decouple, compute, bracketed
// open-write-close on the syscall cores, couple) with the given registry
// and tracer installed, and drives it to completion.
func runObservable(t *testing.T, reg *ulppip.MetricsRegistry, tr *ulppip.Tracer) {
	t.Helper()
	s := ulppip.NewSim(ulppip.Wallaby())
	if tr != nil {
		s.Engine.SetTracer(tr)
	}
	if reg != nil {
		s.Kernel.SetMetrics(reg)
	}
	prog := ulpProg("obs", func(envI interface{}) int {
		env := envI.(*ulppip.Env)
		env.Decouple()
		buf := make([]byte, 256)
		for i := 0; i < 4; i++ {
			env.Compute(2 * ulppip.Microsecond)
			env.Exec(func(kc *ulppip.Task) {
				fd, err := kc.Open(fmt.Sprintf("/obs%d", env.U.Rank), ulppip.OCreate|ulppip.OWrOnly|ulppip.OTrunc)
				if err != nil {
					panic(err)
				}
				kc.Write(fd, buf, true)
				kc.Close(fd)
			})
			env.Yield()
		}
		env.Couple()
		return 0
	})
	ulppip.Boot(s.Kernel, stdConfig(), func(rt *ulppip.Runtime) int {
		for i := 0; i < 4; i++ {
			if _, err := rt.Spawn(prog, ulppip.ULPSpawnOpts{Scheduler: -1}); err != nil {
				t.Error(err)
				return 1
			}
		}
		if _, err := rt.WaitAll(); err != nil {
			t.Error(err)
		}
		rt.Shutdown()
		return 0
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Kernel.FinalizeMetrics()
}

func TestMetricsDumpDeterministic(t *testing.T) {
	var dumps [2]bytes.Buffer
	for i := range dumps {
		reg := ulppip.NewMetricsRegistry()
		runObservable(t, reg, nil)
		if err := reg.Dump(&dumps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
		t.Errorf("same-seed metrics dumps differ:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			dumps[0].String(), dumps[1].String())
	}
	for _, want := range []string{"kernel.syscalls", "blt.couple.ps", "blt.decouple.ps", "kernel.ctx_switch.klt"} {
		if !strings.Contains(dumps[0].String(), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := ulppip.NewTracer(1 << 16)
	runObservable(t, nil, tr)

	var buf bytes.Buffer
	if err := tr.DumpChrome(&buf, "Wallaby"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Cat  string                 `json:"cat"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  *float64               `json:"dur"`
			PID  int                    `json:"pid"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	coreTracks := map[int]bool{}
	var couples, coupleds, syscalls int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				coreTracks[ev.TID] = true
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("span %q has no duration", ev.Name)
			}
			switch {
			case ev.Cat == "syscall":
				syscalls++
			case ev.Cat == "blt.span" && strings.HasPrefix(ev.Name, "couple "):
				couples++
			case ev.Cat == "blt.span" && strings.HasPrefix(ev.Name, "coupled "):
				coupleds++
			}
		case "i":
		default:
			t.Errorf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
	}
	if len(coreTracks) < 2 {
		t.Errorf("want per-core tracks, got %d thread_name records", len(coreTracks))
	}
	if couples == 0 || coupleds == 0 {
		t.Errorf("want couple/coupled spans, got couple=%d coupled=%d", couples, coupleds)
	}
	if syscalls == 0 {
		t.Error("want syscall spans, got none")
	}
}
