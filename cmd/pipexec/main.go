// pipexec mirrors the real PiP package's piprun utility: it launches N
// instances of a (built-in) PIE program as PiP tasks sharing the root's
// address space, in process or thread mode, and reports what the kernel
// saw.
//
// Usage:
//
//	pipexec -prog counter -n 4 -mode process
//	pipexec -prog ioblast -n 8 -mode thread -machine Albireo
//
// Built-in programs: hello, counter, ioblast.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/pip"
	"repro/internal/sim"
)

func main() {
	var (
		progName    = flag.String("prog", "hello", "program: hello, counter, ioblast")
		n           = flag.Int("n", 4, "number of PiP tasks")
		modeName    = flag.String("mode", "process", "process or thread")
		machineName = flag.String("machine", "Wallaby", "Wallaby or Albireo")
	)
	flag.Parse()
	if err := run(*progName, *n, *modeName, *machineName); err != nil {
		fmt.Fprintln(os.Stderr, "pipexec:", err)
		os.Exit(1)
	}
}

// programs is the registry of built-in PIE images.
func programs() map[string]*loader.Image {
	return map[string]*loader.Image{
		"hello": {
			Name: "hello", PIE: true, TextSize: 4096,
			Symbols: []loader.Symbol{{Name: "greeting", Size: 32}},
			Main: func(envI interface{}) int {
				env := envI.(*pip.Env)
				fmt.Printf("  hello from PiP task %d (pid %d)\n",
					env.Proc.Rank, env.Task().Getpid())
				return 0
			},
		},
		"counter": {
			Name: "counter", PIE: true, TextSize: 4096,
			Symbols: []loader.Symbol{
				{Name: "count", Size: 8},
				{Name: "errno", Size: 8, TLS: true},
			},
			Main: func(envI interface{}) int {
				env := envI.(*pip.Env)
				addr, err := env.SymbolAddr("count")
				if err != nil {
					return 1
				}
				// Bump our privatized counter a few times.
				for i := 0; i < 5; i++ {
					v, _ := env.Task().Space().ReadU64(addr, nil)
					env.Task().Space().WriteU64(addr, v+1, nil)
					env.Task().SchedYield()
				}
				v, _ := env.Task().Space().ReadU64(addr, nil)
				fmt.Printf("  task %d: &count=%#x count=%d\n", env.Proc.Rank, addr, v)
				return int(v)
			},
		},
		"ioblast": {
			Name: "ioblast", PIE: true, TextSize: 4096,
			Symbols: []loader.Symbol{{Name: "buf", Size: 4096}},
			Main: func(envI interface{}) int {
				env := envI.(*pip.Env)
				t := env.Task()
				data := make([]byte, 4096)
				for i := 0; i < 4; i++ {
					fd, err := t.Open(fmt.Sprintf("/blast.%d.%d", env.Proc.Rank, i),
						fs.OCreate|fs.OWrOnly)
					if err != nil {
						return 1
					}
					t.Write(fd, data, false)
					t.Close(fd)
				}
				return 0
			},
		},
	}
}

func run(progName string, n int, modeName, machineName string) error {
	img := programs()[progName]
	if img == nil {
		return fmt.Errorf("unknown program %q", progName)
	}
	m := arch.ByName(machineName)
	if m == nil {
		return fmt.Errorf("unknown machine %q", machineName)
	}
	mode := pip.ProcessMode
	switch modeName {
	case "process":
	case "thread":
		mode = pip.ThreadMode
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	e := sim.New()
	k := kernel.New(e, m)
	fmt.Printf("launching %d x %s in PiP %s mode on %s\n", n, progName, mode, m.Name)
	pip.Launch(k, "pip-root", func(r *pip.Root) int {
		var procs []*pip.Process
		for i := 0; i < n; i++ {
			p, err := r.Spawn(img, mode, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spawn:", err)
				return 1
			}
			procs = append(procs, p)
		}
		if mode == pip.ProcessMode {
			for range procs {
				if _, _, err := r.WaitAny(); err != nil {
					fmt.Fprintln(os.Stderr, "wait:", err)
					return 1
				}
			}
		} else {
			for _, p := range procs {
				p.Join()
			}
		}
		return 0
	})
	if err := e.Run(); err != nil {
		return err
	}

	fmt.Printf("done at %v: %d syscalls, %d tasks ever created, %d mapped pages\n",
		e.Now(), k.Syscalls(), n+1, pagesOf(k))
	return nil
}

// pagesOf reports mapped pages of the single shared address space (all
// PiP tasks share the root's).
func pagesOf(k *kernel.Kernel) uint64 {
	// The root task has exited; count via the allocator instead.
	return k.Phys().Allocated()
}
