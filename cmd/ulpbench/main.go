// ulpbench regenerates every table and figure of the paper's evaluation
// (§VI) plus the §VII ablations, on the simulated Wallaby (x86_64) and
// Albireo (AArch64) machines.
//
// Usage:
//
//	ulpbench -exp all
//	ulpbench -exp table5
//	ulpbench -exp fig7 -csv out
//	ulpbench -exp ablate-idle
//
// Experiments: table3, table4, table5, fig7, fig8 (the paper's §VI),
// ablate-idle (A1), ablate-tls (A2), fig6-scenario (A5), all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3|table4|table5|fig7|fig8|ablate-idle|ablate-tls|fig6-scenario|huge-pages|mpi-oversub|all")
	runs := flag.Int("runs", 3, "repetitions per measurement (minimum is reported)")
	csvPrefix := flag.String("csv", "", "also write figure data as <prefix>-<fig>-<machine>.csv")
	reportPath := flag.String("report", "", "write a full markdown report to this file (runs everything)")
	flag.Parse()
	bench.Runs = *runs
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
		if err := bench.Report(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("report written to", *reportPath)
		return
	}
	if err := run(*exp, *csvPrefix); err != nil {
		fmt.Fprintln(os.Stderr, "ulpbench:", err)
		os.Exit(1)
	}
}

func run(exp, csvPrefix string) error {
	w := os.Stdout
	all := exp == "all"
	matched := false

	if all || exp == "table3" {
		matched = true
		r, err := bench.MachineResults(bench.Table3)
		if err != nil {
			return err
		}
		bench.PrintTable3(w, r)
		fmt.Fprintln(w)
	}
	if all || exp == "table4" {
		matched = true
		r, err := bench.MachineResults(bench.Table4)
		if err != nil {
			return err
		}
		bench.PrintTable4(w, r)
		fmt.Fprintln(w)
	}
	if all || exp == "table5" {
		matched = true
		r, err := bench.MachineResults(bench.Table5)
		if err != nil {
			return err
		}
		bench.PrintTable5(w, r)
		fmt.Fprintln(w)
	}
	if all || exp == "fig7" {
		matched = true
		r, err := bench.MachineResults(bench.Fig7)
		if err != nil {
			return err
		}
		for _, name := range []string{"Wallaby", "Albireo"} {
			bench.PrintFig7(w, r[name])
			fmt.Fprintln(w)
			if csvPrefix != "" {
				if err := writeCSV(fmt.Sprintf("%s-fig7-%s.csv", csvPrefix, name), r[name].Series()); err != nil {
					return err
				}
			}
		}
	}
	if all || exp == "fig8" {
		matched = true
		r, err := bench.MachineResults(bench.Fig8)
		if err != nil {
			return err
		}
		for _, name := range []string{"Wallaby", "Albireo"} {
			bench.PrintFig8(w, r[name])
			fmt.Fprintln(w)
			if csvPrefix != "" {
				if err := writeCSV(fmt.Sprintf("%s-fig8-%s.csv", csvPrefix, name), r[name].Series()); err != nil {
					return err
				}
			}
		}
	}
	if all || exp == "ablate-idle" {
		matched = true
		for _, m := range arch.Machines() {
			r, err := bench.AblateIdlePolicy(m)
			if err != nil {
				return err
			}
			bench.PrintIdleAblation(w, r)
			fmt.Fprintln(w)
		}
	}
	if all || exp == "ablate-tls" {
		matched = true
		r, err := bench.MachineResults(bench.AblateTLS)
		if err != nil {
			return err
		}
		bench.PrintTLSAblation(w, r)
		fmt.Fprintln(w)
	}
	if all || exp == "fig6-scenario" {
		matched = true
		for _, m := range arch.Machines() {
			pts, err := bench.Fig6Scenario(m, []int{1, 2, 4}, []int{0, 1, 3})
			if err != nil {
				return err
			}
			bench.PrintFig6(w, pts)
			fmt.Fprintln(w)
		}
	}
	if all || exp == "huge-pages" {
		matched = true
		for _, m := range arch.Machines() {
			r, err := bench.HugePages(m)
			if err != nil {
				return err
			}
			bench.PrintHugePages(w, r)
			fmt.Fprintln(w)
		}
	}
	if all || exp == "mpi-oversub" {
		matched = true
		for _, m := range arch.Machines() {
			pts, err := bench.MPIOversubscription(m, []int{2, 4, 8, 16})
			if err != nil {
				return err
			}
			bench.PrintMPI(w, pts)
			fmt.Fprintln(w)
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func writeCSV(path string, series []bench.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteSeriesCSV(f, series)
}
