// ulpbench regenerates every table and figure of the paper's evaluation
// (§VI) plus the §VII ablations, on the simulated Wallaby (x86_64) and
// Albireo (AArch64) machines.
//
// Usage:
//
//	ulpbench -exp all
//	ulpbench -exp table5
//	ulpbench -exp fig7 -csv out
//	ulpbench -exp fig7 -parallel 8
//	ulpbench -exp all -json
//	ulpbench -exp ablate-idle
//	ulpbench -scale -quick
//
// Experiments: table3, table4, table5, fig7, fig8 (the paper's §VI),
// ablate-idle (A1), ablate-tls (A2), fig6-scenario (A5), all.
//
// -scale runs the wait-queue/futex scale suite (spawn/join and fan-in
// WakeAll up to a million tasks, futex-table churn) instead of the
// paper experiments; -quick shrinks it to CI size (keeping one 1M
// spawn/join row). With -json it writes BENCH_scale.json rather than
// the -exp records file. It is deliberately not part of -exp all: its
// wall-clock, allocation and memory-footprint columns are
// host-dependent, and -exp all output is diffed against baselines.
//
// -parallel N fans the experiment grids out over N workers (default
// GOMAXPROCS); each job runs on its own Engine and results are collected
// by index, so the output is byte-identical at any width.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/schedpolicy"
)

const (
	jsonPath = "BENCH_ulpbench.json"
	// The scale suite writes its own snapshot: its rows are host-coloured
	// (wall, allocs, bytes per task) and must not churn the -exp records.
	scaleJSONPath = "BENCH_scale.json"
	// The chaos-at-scale suite likewise keeps its own snapshot so the
	// supervised/faulted rows never churn the base scale baseline.
	chaosScaleJSONPath = "BENCH_chaos_scale.json"
	// The contention suite (lock algorithms × contention level × ULT:KC
	// ratio) is fully virtual and deterministic, but sweeps a different
	// axis than the paper experiments, so it keeps its own snapshot too.
	contentionJSONPath = "BENCH_contention.json"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3|table4|table5|fig7|fig8|ablate-idle|ablate-tls|fig6-scenario|huge-pages|mpi-oversub|all")
	scale := flag.Bool("scale", false, "run the wait-queue/futex scale suite instead of -exp (see doc comment)")
	contention := flag.Bool("contention", false, "run the lock-contention sweep instead of -exp (lock algorithm x threads x ULT:KC ratio)")
	chaosScale := flag.Bool("chaos", false, "with -scale: the chaos-at-scale suite (fault plane + supervision) instead of the base suite")
	quick := flag.Bool("quick", false, "with -scale: CI-sized workloads instead of the full 100k-task suite")
	runs := flag.Int("runs", 3, "repetitions per measurement (minimum is reported)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for experiment sweeps (1 = serial)")
	csvPrefix := flag.String("csv", "", "also write figure data as <prefix>-<fig>-<machine>.csv")
	jsonOut := flag.Bool("json", false, "also write machine-readable results to "+jsonPath)
	metricsJSON := flag.Bool("metrics-json", false, "aggregate kernel metrics over every run into the JSON report (implies -json)")
	reportPath := flag.String("report", "", "write a full markdown report to this file (runs everything)")
	probeStr := flag.String("probe", "", "with -scale: attach stock probes to every row's kernel (e.g. 'slo:p99_us=500'); a failing SLO check fails the row")
	schedPolicy := flag.String("sched-policy", "", "scheduler policy for every benchmark kernel: "+strings.Join(schedpolicy.Names(), "|")+" (empty = stock dispatch)")
	flag.Parse()
	bench.Runs = *runs
	if *probeStr != "" {
		specs, err := probe.ParseSpecs(*probeStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
		bench.ProbeSpecs = specs
	}
	if *schedPolicy != "" {
		// Validate the spec once up front; bench parses a fresh instance
		// per kernel so stateful policies never leak state across runs.
		if _, err := schedpolicy.New(*schedPolicy); err != nil {
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
		bench.SchedPolicy = *schedPolicy
	}
	bench.Parallelism = *parallel
	if *metricsJSON {
		*jsonOut = true
		bench.Metrics = metrics.NewRegistry()
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
		if err := bench.Report(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("report written to", *reportPath)
		return
	}
	var recs *[]bench.Record
	if *jsonOut {
		recs = new([]bench.Record)
	}
	if *scale {
		if err := runScale(*quick, *chaosScale, recs); err != nil {
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
	} else if *contention {
		if err := runContention(*quick, recs); err != nil {
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
	} else if err := run(*exp, *csvPrefix, recs); err != nil {
		fmt.Fprintln(os.Stderr, "ulpbench:", err)
		os.Exit(1)
	}
	if recs != nil {
		if bench.Metrics != nil {
			for _, s := range bench.Metrics.Snapshot() {
				*recs = append(*recs, bench.Record{Experiment: "metrics", Series: s.Name, Ns: s.Value})
			}
		}
		path := jsonPath
		if *scale {
			path = scaleJSONPath
			if *chaosScale {
				path = chaosScaleJSONPath
			}
		}
		if *contention {
			path = contentionJSONPath
		}
		if err := bench.WriteRecordsJSON(path, *recs); err != nil {
			fmt.Fprintln(os.Stderr, "ulpbench:", err)
			os.Exit(1)
		}
		fmt.Println("benchmark records written to", path)
	}
}

// runScale drives the scale suite serially over both machines (the
// wall/alloc columns read process-global counters, so no sweep here).
// With chaosScale it runs the chaos-at-scale variant: fault plane plus
// supervision, separate snapshot file.
func runScale(quick, chaosScale bool, recs *[]bench.Record) error {
	cfg := bench.FullScaleConfig()
	if quick {
		cfg = bench.QuickScaleConfig()
	}
	if chaosScale {
		cfg = bench.FullChaosScaleConfig()
		if quick {
			cfg = bench.QuickChaosScaleConfig()
		}
	}
	for _, m := range arch.Machines() {
		var r bench.ScaleResult
		var err error
		if chaosScale {
			r, err = bench.ChaosScale(m, cfg)
		} else {
			r, err = bench.Scale(m, cfg)
		}
		if err != nil {
			return err
		}
		if chaosScale {
			bench.PrintChaosScale(os.Stdout, r)
		} else {
			bench.PrintScale(os.Stdout, r)
		}
		fmt.Println()
		if recs != nil {
			*recs = append(*recs, bench.ScaleRecords(r)...)
		}
	}
	return nil
}

// runContention drives the lock-contention sweep serially over both
// machines. Every column is virtual time, so the output (and the JSON
// snapshot) is byte-deterministic; -quick selects the CI grid, a strict
// subset of the full grid with identical per-row parameters.
func runContention(quick bool, recs *[]bench.Record) error {
	cfg := bench.FullContentionConfig()
	if quick {
		cfg = bench.QuickContentionConfig()
	}
	for _, m := range arch.Machines() {
		r, err := bench.Contention(m, cfg)
		if err != nil {
			return err
		}
		bench.PrintContention(os.Stdout, r)
		fmt.Println()
		if recs != nil {
			*recs = append(*recs, bench.ContentionRecords(r)...)
		}
	}
	return nil
}

func run(exp, csvPrefix string, recs *[]bench.Record) error {
	w := os.Stdout
	all := exp == "all"
	matched := false

	// harness wraps one experiment, adding a wall-clock + allocation row
	// to the JSON records — the cost of the harness itself, as opposed to
	// the virtual-time results the experiment produces.
	harness := func(name string, fn func() error) error {
		matched = true
		if recs == nil {
			return fn()
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		err := fn()
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		*recs = append(*recs, bench.Record{
			Experiment: name, Series: "harness",
			Ns:     float64(wall.Nanoseconds()),
			Allocs: after.Mallocs - before.Mallocs,
		})
		return err
	}
	emit := func(rows []bench.Record) {
		if recs != nil {
			*recs = append(*recs, rows...)
		}
	}

	if all || exp == "table3" {
		if err := harness("table3", func() error {
			r, err := bench.MachineResults(bench.Table3)
			if err != nil {
				return err
			}
			bench.PrintTable3(w, r)
			fmt.Fprintln(w)
			emit(bench.Table3Records(r))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "table4" {
		if err := harness("table4", func() error {
			r, err := bench.MachineResults(bench.Table4)
			if err != nil {
				return err
			}
			bench.PrintTable4(w, r)
			fmt.Fprintln(w)
			emit(bench.Table4Records(r))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "table5" {
		if err := harness("table5", func() error {
			r, err := bench.MachineResults(bench.Table5)
			if err != nil {
				return err
			}
			bench.PrintTable5(w, r)
			fmt.Fprintln(w)
			emit(bench.Table5Records(r))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "fig7" {
		if err := harness("fig7", func() error {
			r, err := bench.MachineResults(bench.Fig7)
			if err != nil {
				return err
			}
			for _, name := range bench.MachineOrder {
				bench.PrintFig7(w, r[name])
				fmt.Fprintln(w)
				if csvPrefix != "" {
					if err := writeCSV(fmt.Sprintf("%s-fig7-%s.csv", csvPrefix, name), r[name].Series()); err != nil {
						return err
					}
				}
			}
			emit(bench.Fig7Records(r))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "fig8" {
		if err := harness("fig8", func() error {
			r, err := bench.MachineResults(bench.Fig8)
			if err != nil {
				return err
			}
			for _, name := range bench.MachineOrder {
				bench.PrintFig8(w, r[name])
				fmt.Fprintln(w)
				if csvPrefix != "" {
					if err := writeCSV(fmt.Sprintf("%s-fig8-%s.csv", csvPrefix, name), r[name].Series()); err != nil {
						return err
					}
				}
			}
			emit(bench.Fig8Records(r))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "ablate-idle" {
		if err := harness("ablate-idle", func() error {
			for _, m := range arch.Machines() {
				r, err := bench.AblateIdlePolicy(m)
				if err != nil {
					return err
				}
				bench.PrintIdleAblation(w, r)
				fmt.Fprintln(w)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "ablate-tls" {
		if err := harness("ablate-tls", func() error {
			r, err := bench.MachineResults(bench.AblateTLS)
			if err != nil {
				return err
			}
			bench.PrintTLSAblation(w, r)
			fmt.Fprintln(w)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "fig6-scenario" {
		if err := harness("fig6-scenario", func() error {
			for _, m := range arch.Machines() {
				pts, err := bench.Fig6Scenario(m, []int{1, 2, 4}, []int{0, 1, 3})
				if err != nil {
					return err
				}
				bench.PrintFig6(w, pts)
				fmt.Fprintln(w)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "huge-pages" {
		if err := harness("huge-pages", func() error {
			for _, m := range arch.Machines() {
				r, err := bench.HugePages(m)
				if err != nil {
					return err
				}
				bench.PrintHugePages(w, r)
				fmt.Fprintln(w)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "mpi-oversub" {
		if err := harness("mpi-oversub", func() error {
			for _, m := range arch.Machines() {
				pts, err := bench.MPIOversubscription(m, []int{2, 4, 8, 16})
				if err != nil {
					return err
				}
				bench.PrintMPI(w, pts)
				fmt.Fprintln(w)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func writeCSV(path string, series []bench.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteSeriesCSV(f, series)
}
