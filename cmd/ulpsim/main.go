// ulpsim runs a configurable ULP-PiP scenario on a simulated machine and
// reports scheduling statistics — optionally with a full event trace.
//
// Usage:
//
//	ulpsim -machine Wallaby -ulps 8 -prog-cores 2 -syscall-cores 2 \
//	       -ops 16 -compute-us 5 -idle blocking -trace trace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
	"repro/internal/timeline"
)

func main() {
	var (
		machineName  = flag.String("machine", "Wallaby", "Wallaby (x86_64) or Albireo (aarch64)")
		ulps         = flag.Int("ulps", 4, "number of ULPs to spawn")
		progCores    = flag.Int("prog-cores", 2, "cores running user code (schedulers)")
		syscallCores = flag.Int("syscall-cores", 2, "cores dedicated to system-calls")
		ops          = flag.Int("ops", 8, "bracketed open-write-close operations per ULP")
		computeUS    = flag.Float64("compute-us", 5, "computation between operations [us]")
		writeSize    = flag.Int("write-size", 4096, "write buffer size [bytes]")
		idle         = flag.String("idle", "busywait", "KC idle policy: busywait or blocking")
		signals      = flag.String("signals", "fcontext", "context switch style: fcontext or ucontext")
		tracePath    = flag.String("trace", "", "write the event trace to this file")
		traceCap     = flag.Int("trace-cap", 4096, "max retained trace events")
		workSteal    = flag.Bool("workstealing", false, "idle schedulers steal ready UCs from peers")
		showTimeline = flag.Bool("timeline", false, "print per-core utilization and an ASCII Gantt chart")
		preemptUS    = flag.Float64("preempt-us", 0, "Shinjuku-style ULT preemption quantum [us], 0 = off")
	)
	flag.Parse()
	if err := run(*machineName, *ulps, *progCores, *syscallCores, *ops,
		*computeUS, *writeSize, *idle, *signals, *tracePath, *traceCap,
		*workSteal, *preemptUS, *showTimeline); err != nil {
		fmt.Fprintln(os.Stderr, "ulpsim:", err)
		os.Exit(1)
	}
}

func run(machineName string, ulps, progCores, syscallCores, ops int,
	computeUS float64, writeSize int, idle, signals, tracePath string, traceCap int,
	workSteal bool, preemptUS float64, showTimeline bool) error {

	m := arch.ByName(machineName)
	if m == nil {
		return fmt.Errorf("unknown machine %q (want Wallaby or Albireo)", machineName)
	}
	if progCores+syscallCores > m.Cores() {
		return fmt.Errorf("%d cores requested, machine has %d", progCores+syscallCores, m.Cores())
	}
	idlePolicy := blt.BusyWait
	switch idle {
	case "busywait":
	case "blocking":
		idlePolicy = blt.Blocking
	default:
		return fmt.Errorf("unknown idle policy %q", idle)
	}
	sigMode := core.FcontextMode
	switch signals {
	case "fcontext":
	case "ucontext":
		sigMode = core.UcontextMode
	default:
		return fmt.Errorf("unknown signal mode %q", signals)
	}

	e := sim.New()
	var tracer *sim.Tracer
	if tracePath != "" {
		tracer = sim.NewTracer(traceCap)
		e.SetTracer(tracer)
	}
	k := kernel.New(e, m)
	var rec *timeline.Recorder
	if showTimeline {
		rec = timeline.New()
		k.SetTimeline(rec)
	}

	cfg := core.Config{
		ProgCores:      seq(0, progCores),
		SyscallCores:   seq(progCores, syscallCores),
		Idle:           idlePolicy,
		Signals:        sigMode,
		Audit:          true,
		WorkStealing:   workSteal,
		PreemptQuantum: sim.FromUS(preemptUS),
	}

	worker := &loader.Image{
		Name: "worker", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "progress", Size: 8},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: func(envI interface{}) int {
			env := envI.(*core.Env)
			buf := make([]byte, writeSize)
			for i := 0; i < ops; i++ {
				env.Compute(sim.FromUS(computeUS))
				env.Exec(func(kc *kernel.Task) {
					fd, err := kc.Open(fmt.Sprintf("/out.%d", env.U.Rank),
						fs.OCreate|fs.OWrOnly|fs.OTrunc)
					if err != nil {
						panic(err)
					}
					kc.Write(fd, buf, true)
					kc.Close(fd)
				})
				env.Yield()
			}
			return 0
		},
	}

	var makespan sim.Duration
	var statuses []int
	var violations int
	var rtRef *core.Runtime
	core.Boot(k, cfg, func(rt *core.Runtime) int {
		rtRef = rt
		start := e.Now()
		for i := 0; i < ulps; i++ {
			if _, err := rt.Spawn(worker, core.SpawnOpts{Scheduler: -1, StartDecoupled: true}); err != nil {
				panic(err)
			}
		}
		var err error
		statuses, err = rt.WaitAll()
		if err != nil {
			panic(err)
		}
		makespan = e.Now().Sub(start)
		violations = len(rt.Violations())
		rt.Shutdown()
		return 0
	})
	if err := e.Run(); err != nil {
		return err
	}

	fmt.Printf("machine        %s (%s, %d cores @ %.1f GHz)\n", m.Name, m.Arch, m.Cores(), m.ClockGHz)
	fmt.Printf("deployment     %d prog + %d syscall cores, idle=%s, signals=%s, preempt=%v\n",
		progCores, syscallCores, idlePolicy, sigMode, sim.FromUS(preemptUS))
	fmt.Printf("workload       %d ULPs x %d ops (%d B writes, %.1f us compute)\n",
		ulps, ops, writeSize, computeUS)
	fmt.Printf("makespan       %v\n", makespan)
	totalOps := float64(ulps * ops)
	fmt.Printf("throughput     %.1f ops/ms\n", totalOps/(float64(makespan)/1e9))
	fmt.Printf("exit statuses  %v\n", statuses)
	fmt.Printf("consistency    %d violations (audited)\n", violations)
	fmt.Printf("kernel         %d syscalls, %d kernel context switches\n",
		k.Syscalls(), k.ContextSwitches())
	for _, s := range rtRef.Pool().Schedulers() {
		fmt.Printf("scheduler c%-2d  %d dispatches, %d steals, %v spun idle\n",
			s.Core(), s.Dispatches(), s.Steals(), s.SpunIdle())
	}
	for i := 0; i < k.Cores(); i++ {
		if b := k.Core(i).Busy(); b > 0 {
			fmt.Printf("core %-2d        busy %v (%.1f%%)\n", i, b,
				100*float64(b)/float64(e.Now()))
		}
	}

	if showTimeline {
		fmt.Println()
		rec.Report(os.Stdout)
		fmt.Println()
		rec.Gantt(os.Stdout, 72)
	}

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tracer.Dump(f); err != nil {
			return err
		}
		fmt.Printf("trace          %d events retained (of %d) -> %s\n",
			len(tracer.Events()), tracer.Total(), tracePath)
	}
	return nil
}

func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}
