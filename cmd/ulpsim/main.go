// ulpsim runs a configurable ULP-PiP scenario on a simulated machine and
// reports scheduling statistics — optionally with a full event trace.
//
// Usage:
//
//	ulpsim -machine Wallaby -ulps 8 -prog-cores 2 -syscall-cores 2 \
//	       -ops 16 -compute-us 5 -idle blocking -trace trace.txt
//
// With -chaos it instead runs the seeded protocol fuzzer: a random (but
// seed-determined) operation mix under an injected fault schedule, run
// twice and checked for a bit-identical digest. This is how a failing
// seed reported by the chaos tests is replayed:
//
//	ulpsim -chaos -seed 7 -machine Albireo -idle blocking \
//	       -faults 'futex_lost_wake:prob=0.05;kc_kill:prob=0.002,task=kc.chaos'
//
// With -explore it runs the controlled-scheduling explorer: same-instant
// event ties are resolved by a policy (seeded random walks or bounded
// exhaustive DFS) instead of FIFO, and every explored schedule is checked
// against the protocol's invariant oracles. A failing schedule prints a
// shrunk decision trace and the command that replays it:
//
//	ulpsim -explore -explore-scenario blt-mn -explore-policy dfs \
//	       -explore-depth 4 -explore-runs 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/schedpolicy"
	"repro/internal/sim"
	"repro/internal/supervise"
	"repro/internal/timeline"
)

func main() {
	var (
		machineName  = flag.String("machine", "Wallaby", "Wallaby (x86_64) or Albireo (aarch64)")
		ulps         = flag.Int("ulps", 4, "number of ULPs to spawn")
		progCores    = flag.Int("prog-cores", 2, "cores running user code (schedulers)")
		syscallCores = flag.Int("syscall-cores", 2, "cores dedicated to system-calls")
		ops          = flag.Int("ops", 8, "bracketed open-write-close operations per ULP")
		computeUS    = flag.Float64("compute-us", 5, "computation between operations [us]")
		writeSize    = flag.Int("write-size", 4096, "write buffer size [bytes]")
		idle         = flag.String("idle", "busywait", "KC idle policy: busywait or blocking")
		signals      = flag.String("signals", "fcontext", "context switch style: fcontext or ucontext")
		tracePath    = flag.String("trace", "", "write the event trace to this file")
		traceCap     = flag.Int("trace-cap", 4096, "max retained trace events")
		traceFormat  = flag.String("trace-format", "text", "trace file format: text or chrome (Perfetto-loadable JSON)")
		showMetrics  = flag.Bool("metrics", false, "print the deterministic metrics dump after the run")
		workSteal    = flag.Bool("workstealing", false, "idle schedulers steal ready UCs from peers")
		showTimeline = flag.Bool("timeline", false, "print per-core utilization and an ASCII Gantt chart")
		preemptUS    = flag.Float64("preempt-us", 0, "Shinjuku-style ULT preemption quantum [us], 0 = off")
		superviseOn  = flag.Bool("supervise", false, "install the supervision plane (stall/deadlock watchdog, restart budgets)")
		stallUS      = flag.Float64("stall-horizon", 0, "supervision stall horizon [us], 0 = default")
		chaosMode    = flag.Bool("chaos", false, "run the seeded chaos fuzzer instead of the scenario workload")
		seed         = flag.Uint64("seed", 1, "fault plane / chaos / exploration seed")
		faults       = flag.String("faults", "", "fault specs, e.g. 'futex_lost_wake:prob=0.01;kc_kill:nth=3,task=kc.t2' (in -chaos mode, empty means the default mix)")
		exploreMode  = flag.Bool("explore", false, "run the schedule explorer instead of the scenario workload")
		exploreScen  = flag.String("explore-scenario", "pingpong", "exploration scenario: "+strings.Join(explore.ScenarioNames(), ", "))
		explorePol   = flag.String("explore-policy", "random", "exploration policy: random (seeded walks) or dfs (bounded exhaustive)")
		exploreRuns  = flag.Int("explore-runs", 64, "number of walks (random) or run budget (dfs, 0 = unbounded)")
		exploreDepth = flag.Int("explore-depth", 4, "dfs decision-depth cap")
		exploreTrace = flag.String("explore-trace", "", "replay this comma-separated decision trace instead of exploring")
		probeStr     = flag.String("probe", "", "stock probe specs, e.g. 'throttle:task=worker,interval_us=50;slo:p99_us=800' (see -probe-list)")
		probeList    = flag.Bool("probe-list", false, "list attach points and stock probes, then exit")
		schedPolicy  = flag.String("sched-policy", "", "scheduler policy: "+strings.Join(schedpolicy.Names(), "|")+" (with optional :params; empty = stock dispatch)")
	)
	flag.Parse()
	if *probeList {
		fmt.Print(probe.ListStock())
		return
	}
	if *schedPolicy != "" {
		// Validate once up front; each run mode parses its own fresh
		// instance so stateful policies never span simulations.
		if _, perr := schedpolicy.New(*schedPolicy); perr != nil {
			fmt.Fprintln(os.Stderr, "ulpsim:", perr)
			os.Exit(1)
		}
	}
	var err error
	if *traceFormat != "text" && *traceFormat != "chrome" {
		err = fmt.Errorf("unknown trace format %q (want text or chrome)", *traceFormat)
	} else if *chaosMode {
		err = runChaos(*machineName, *ulps, *ops, *idle, *signals, *seed, *faults,
			*tracePath, *traceCap, *traceFormat, *showMetrics, *superviseOn, *stallUS, *probeStr, *schedPolicy)
	} else if *exploreMode {
		err = runExplore(*machineName, *idle, *exploreScen, *explorePol,
			*exploreRuns, *exploreDepth, *seed, *exploreTrace, *probeStr, *schedPolicy)
	} else {
		err = run(*machineName, *ulps, *progCores, *syscallCores, *ops,
			*computeUS, *writeSize, *idle, *signals, *tracePath, *traceCap,
			*traceFormat, *showMetrics, *workSteal, *preemptUS, *showTimeline,
			*seed, *faults, *superviseOn, *stallUS, *probeStr, *schedPolicy)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ulpsim:", err)
		os.Exit(1)
	}
}

// writeTrace renders the tracer to path in the selected format and
// prints the retained/dropped summary. The dropped line only appears
// when the bounded ring actually evicted events.
func writeTrace(tracer *sim.Tracer, path, format, process string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "chrome" {
		err = tracer.DumpChrome(f, process)
	} else {
		err = tracer.Dump(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace          %d events retained (of %d) -> %s\n",
		tracer.Len(), tracer.Total(), path)
	if d := tracer.Dropped(); d > 0 {
		fmt.Printf("trace          dropped=%d (raise -trace-cap to keep more)\n", d)
	}
	return nil
}

// dumpMetrics prints the registry's deterministic dump to stdout.
func dumpMetrics(reg *metrics.Registry) error {
	fmt.Println("metrics        (same seed => byte-identical dump)")
	return reg.Dump(os.Stdout)
}

// runChaos is the -chaos mode: one verified chaos run, then a rerun to
// prove the digest is a pure function of (seed, faults). The tracer and
// metrics registry attach to the first run only — neither charges
// virtual time, so the second (bare) run must still produce the same
// digest.
func runChaos(machineName string, ulps, ops int, idle, signals string, seed uint64, faultsStr string,
	tracePath string, traceCap int, traceFormat string, showMetrics bool,
	superviseOn bool, stallUS float64, probeStr, schedPolicy string) error {
	m := arch.ByName(machineName)
	if m == nil {
		return fmt.Errorf("unknown machine %q (want Wallaby or Albireo)", machineName)
	}
	idlePolicy, sigMode, err := parseModes(idle, signals)
	if err != nil {
		return err
	}
	specs := chaos.DefaultSpecs()
	if faultsStr != "" {
		if specs, err = fault.ParseSpecs(faultsStr); err != nil {
			return err
		}
	}
	var probes []probe.Spec
	if probeStr != "" {
		if probes, err = probe.ParseSpecs(probeStr); err != nil {
			return err
		}
	}
	cfg := chaos.Config{
		Machine: m, Seed: seed, Specs: specs,
		ULPs: ulps, Ops: ops, Idle: idlePolicy, SigMode: sigMode,
		Supervise: superviseOn, StallHorizon: sim.FromUS(stallUS),
		Probes: probes, SchedPolicy: schedPolicy,
	}
	cfg1 := cfg
	var tracer *sim.Tracer
	if tracePath != "" {
		tracer = sim.NewTracer(traceCap)
		cfg1.Trace = tracer
	}
	var reg *metrics.Registry
	if showMetrics {
		reg = metrics.NewRegistry()
		cfg1.Metrics = reg
	}
	d1, stats, err := chaos.RunWithStats(cfg1)
	if err != nil {
		return err
	}
	d2, err := chaos.Run(cfg)
	if err != nil {
		return fmt.Errorf("rerun: %w", err)
	}
	fmt.Printf("machine        %s (%s), idle=%s, signals=%s\n", m.Name, m.Arch, idlePolicy, sigMode)
	fmt.Printf("workload       %d ULPs x %d ops, seed %d\n", ulps, ops, seed)
	fmt.Printf("digest         %s\n", d1)
	for _, line := range stats {
		if rest, ok := strings.CutPrefix(line, "probe "); ok {
			fmt.Printf("probe          %s\n", rest)
		} else {
			fmt.Printf("fault          %s\n", line)
		}
	}
	if !d1.Equal(d2) {
		return fmt.Errorf("NONDETERMINISTIC:\n  run1: %s\n  run2: %s\nrepro: %s",
			d1, d2, chaos.ReproCommand(cfg))
	}
	fmt.Printf("determinism    rerun digest identical\n")
	fmt.Printf("repro          %s\n", chaos.ReproCommand(cfg))
	if tracer != nil {
		if err := writeTrace(tracer, tracePath, traceFormat, "chaos "+m.Name); err != nil {
			return err
		}
	}
	if reg != nil {
		return dumpMetrics(reg)
	}
	return nil
}

// runExplore is the -explore mode: controlled-scheduling runs of a named
// scenario under an exploration policy, every run checked against the
// invariant oracles. A failing schedule is shrunk to its minimal
// decision prefix and printed with the exact replay command; -explore-trace
// replays such a prefix deterministically.
func runExplore(machineName, idle, scenario, policyStr string,
	runs, depth int, seed uint64, traceStr, probeStr, schedPolicy string) error {
	if probeStr != "" {
		specs, err := probe.ParseSpecs(probeStr)
		if err != nil {
			return err
		}
		explore.ProbeSpecs = specs
	}
	explore.PolicySpec = schedPolicy
	var mk func() *arch.Machine
	switch strings.ToLower(machineName) {
	case "wallaby":
		mk = arch.Wallaby
	case "albireo":
		mk = arch.Albireo
	default:
		return fmt.Errorf("unknown machine %q (want Wallaby or Albireo)", machineName)
	}
	idlePolicy, _, err := parseModes(idle, "fcontext")
	if err != nil {
		return err
	}
	s, err := explore.ByName(scenario, mk, idlePolicy)
	if err != nil {
		return err
	}
	fmt.Printf("scenario       %s on %s, idle=%s\n", s.Name, machineName, idlePolicy)
	if traceStr != "" {
		prefix, err := explore.ParseTrace(traceStr)
		if err != nil {
			return err
		}
		ds, err := explore.Replay(s, prefix)
		fmt.Printf("replay         prefix %s -> %d decisions\n", explore.TraceString(prefix), len(ds))
		if err != nil {
			return fmt.Errorf("oracle violation reproduced: %w", err)
		}
		fmt.Printf("verdict        all oracles hold on the replayed schedule\n")
		return nil
	}
	pol, err := explore.ParsePolicy(policyStr)
	if err != nil {
		return err
	}
	res := explore.Explore(s, explore.Config{Policy: pol, Runs: runs, Depth: depth, Seed: seed})
	fmt.Printf("policy         %s (runs=%d depth=%d seed=%d)\n", pol, runs, depth, seed)
	fmt.Printf("explored       %d runs, %d decision points, max branching %d\n",
		res.Runs, res.Decisions, res.MaxWidth)
	if pol == explore.DFS {
		if res.Complete {
			fmt.Printf("coverage       bounded search space exhausted\n")
		} else {
			fmt.Printf("coverage       run budget hit before exhausting the space\n")
		}
	}
	if f := res.Failure; f != nil {
		fmt.Printf("FAILURE        %s\n", f.Err)
		fmt.Printf("trace          %s (run %d, seed %d)\n", explore.TraceString(f.Trace), f.Run, f.Seed)
		fmt.Printf("shrunk         %s\n", explore.TraceString(f.Shrunk))
		fmt.Printf("repro          ulpsim -explore -explore-scenario %s -machine %s -idle %s -explore-trace %s\n",
			s.Name, machineName, idlePolicy, explore.TraceString(f.Shrunk))
		return fmt.Errorf("oracle violation after %d runs", res.Runs)
	}
	fmt.Printf("verdict        all oracles hold on every explored schedule\n")
	return nil
}

// parseModes maps the -idle and -signals flag values. Case-insensitive,
// so a chaos repro command (which prints the policies' String forms)
// pastes back verbatim.
func parseModes(idle, signals string) (blt.IdlePolicy, core.SignalMode, error) {
	idlePolicy := blt.BusyWait
	switch strings.ToLower(idle) {
	case "busywait":
	case "blocking":
		idlePolicy = blt.Blocking
	default:
		return 0, 0, fmt.Errorf("unknown idle policy %q", idle)
	}
	sigMode := core.FcontextMode
	switch signals {
	case "fcontext":
	case "ucontext":
		sigMode = core.UcontextMode
	default:
		return 0, 0, fmt.Errorf("unknown signal mode %q", signals)
	}
	return idlePolicy, sigMode, nil
}

func run(machineName string, ulps, progCores, syscallCores, ops int,
	computeUS float64, writeSize int, idle, signals, tracePath string, traceCap int,
	traceFormat string, showMetrics bool,
	workSteal bool, preemptUS float64, showTimeline bool, seed uint64, faultsStr string,
	superviseOn bool, stallUS float64, probeStr, schedPolicy string) error {

	m := arch.ByName(machineName)
	if m == nil {
		return fmt.Errorf("unknown machine %q (want Wallaby or Albireo)", machineName)
	}
	if progCores+syscallCores > m.Cores() {
		return fmt.Errorf("%d cores requested, machine has %d", progCores+syscallCores, m.Cores())
	}
	idlePolicy, sigMode, err := parseModes(idle, signals)
	if err != nil {
		return err
	}

	e := sim.New()
	var tracer *sim.Tracer
	if tracePath != "" {
		tracer = sim.NewTracer(traceCap)
		e.SetTracer(tracer)
	}
	k := kernel.New(e, m)
	var ultPol blt.ULTPolicy
	if schedPolicy != "" {
		pol, err := schedpolicy.New(schedPolicy)
		if err != nil {
			return err
		}
		k.SetSchedPolicy(pol)
		ultPol = pol
	}
	var reg *metrics.Registry
	if showMetrics {
		reg = metrics.NewRegistry()
		k.SetMetrics(reg)
	}
	var plane *fault.Plane
	if faultsStr != "" {
		specs, err := fault.ParseSpecs(faultsStr)
		if err != nil {
			return err
		}
		plane = fault.NewPlane(seed, specs)
		k.SetFaultPlane(plane)
	}
	var atts []*probe.Attachment
	if probeStr != "" {
		specs, err := probe.ParseSpecs(probeStr)
		if err != nil {
			return err
		}
		atts = probe.AttachSpecs(k.Probes(), specs)
	}
	var rec *timeline.Recorder
	if showTimeline {
		rec = timeline.New()
		k.SetTimeline(rec)
	}
	var sup *supervise.Plane
	if superviseOn {
		sup = supervise.New(k, supervise.Config{
			StallHorizon: sim.FromUS(stallUS),
			Seed:         seed,
			Metrics:      reg,
		})
		sup.Install()
	}

	cfg := core.Config{
		ProgCores:      seq(0, progCores),
		SyscallCores:   seq(progCores, syscallCores),
		Idle:           idlePolicy,
		Signals:        sigMode,
		Audit:          true,
		WorkStealing:   workSteal,
		PreemptQuantum: sim.FromUS(preemptUS),
		SchedPolicy:    ultPol,
	}

	worker := &loader.Image{
		Name: "worker", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "progress", Size: 8},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: func(envI interface{}) int {
			env := envI.(*core.Env)
			buf := make([]byte, writeSize)
			for i := 0; i < ops; i++ {
				env.Compute(sim.FromUS(computeUS))
				env.Exec(func(kc *kernel.Task) {
					fd, err := kc.Open(fmt.Sprintf("/out.%d", env.U.Rank),
						fs.OCreate|fs.OWrOnly|fs.OTrunc)
					if err != nil {
						return // injected fault: skip this op
					}
					kc.Write(fd, buf, true)
					kc.Close(fd)
				})
				env.Yield()
			}
			return 0
		},
	}

	var makespan sim.Duration
	var statuses []int
	var violations int
	var rtRef *core.Runtime
	if _, err := core.Boot(k, cfg, func(rt *core.Runtime) int {
		rtRef = rt
		start := e.Now()
		for i := 0; i < ulps; i++ {
			if _, err := rt.Spawn(worker, core.SpawnOpts{Scheduler: -1, StartDecoupled: true}); err != nil {
				panic(err)
			}
		}
		var err error
		statuses, err = rt.WaitAll()
		if err != nil {
			panic(err)
		}
		makespan = e.Now().Sub(start)
		violations = len(rt.Violations())
		rt.Shutdown()
		return 0
	}); err != nil {
		return err
	}
	if err := e.Run(); err != nil {
		return err
	}

	fmt.Printf("machine        %s (%s, %d cores @ %.1f GHz)\n", m.Name, m.Arch, m.Cores(), m.ClockGHz)
	fmt.Printf("deployment     %d prog + %d syscall cores, idle=%s, signals=%s, preempt=%v\n",
		progCores, syscallCores, idlePolicy, sigMode, sim.FromUS(preemptUS))
	fmt.Printf("workload       %d ULPs x %d ops (%d B writes, %.1f us compute)\n",
		ulps, ops, writeSize, computeUS)
	fmt.Printf("makespan       %v\n", makespan)
	totalOps := float64(ulps * ops)
	fmt.Printf("throughput     %.1f ops/ms\n", totalOps/(float64(makespan)/1e9))
	fmt.Printf("exit statuses  %v\n", statuses)
	fmt.Printf("consistency    %d violations (audited)\n", violations)
	fmt.Printf("kernel         %d syscalls, %d kernel context switches\n",
		k.Syscalls(), k.ContextSwitches())
	if plane != nil {
		fmt.Printf("injections     %d (seed %d)\n", plane.Injections(), seed)
		for _, line := range plane.Stats() {
			fmt.Printf("fault          %s\n", line)
		}
	}
	if sup != nil {
		fmt.Printf("supervision    %s\n", sup.Summary())
	}
	var sloErr error
	for _, a := range atts {
		if a.Report != nil {
			fmt.Printf("probe          %s\n", a.Report())
		}
		if a.Check != nil {
			if err := a.Check(); err != nil {
				fmt.Printf("probe          CHECK FAILED: %v\n", err)
				sloErr = err
			}
		}
	}
	for _, s := range rtRef.Pool().Schedulers() {
		fmt.Printf("scheduler c%-2d  %d dispatches, %d steals, %v spun idle\n",
			s.Core(), s.Dispatches(), s.Steals(), s.SpunIdle())
	}
	for i := 0; i < k.Cores(); i++ {
		if b := k.Core(i).Busy(); b > 0 {
			fmt.Printf("core %-2d        busy %v (%.1f%%)\n", i, b,
				100*float64(b)/float64(e.Now()))
		}
	}

	if showTimeline {
		fmt.Println()
		rec.Report(os.Stdout)
		fmt.Println()
		rec.Gantt(os.Stdout, 72)
	}

	if tracePath != "" {
		if err := writeTrace(tracer, tracePath, traceFormat, m.Name); err != nil {
			return err
		}
	}
	if reg != nil {
		k.FinalizeMetrics()
		if plane != nil {
			plane.PublishMetrics(reg)
		}
		if err := dumpMetrics(reg); err != nil {
			return err
		}
	}
	return sloErr
}

func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}
